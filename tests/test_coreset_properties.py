"""Property-based tests (hypothesis) for the coreset merge tree.

The contracts under test (ISSUE 6):

(a) a :class:`CoresetTreeSink` fed a partition stream produces final cell
    models **bit-identical** to a one-shot :class:`MergeKMeansSink` fed
    the same stream, for every kernel — the tree rides alongside the
    exact merge, it never changes it;
(b) total weight mass is conserved at every tree node (a node's summary
    carries exactly the mass of the leaves it covers);
(c) the prefix query after i partitions is bit-identical to the query of
    a fresh tree fed exactly the first i partitions, and independent of
    arrival order.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import WeightedCentroidSet
from repro.stream.coreset import CoresetTree, CoresetTreeSink
from repro.stream.items import CentroidMessage, Watermark
from repro.stream.kmeans_ops import MergeKMeansSink


@st.composite
def partition_streams(draw, min_partitions=1, max_partitions=12):
    """Strategy: one cell's partition stream of weighted centroid sets.

    Centroid coordinates and weights are drawn as exact float64 values,
    so every derived quantity in the tests is reproducible bit-for-bit.
    """
    n_partitions = draw(st.integers(min_partitions, max_partitions))
    dim = draw(st.integers(1, 4))
    coord = st.floats(
        min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
    )
    weight = st.floats(
        min_value=0.5, max_value=40.0, allow_nan=False, allow_infinity=False
    )
    messages = []
    for partition in range(n_partitions):
        k = draw(st.integers(1, 5))
        centroids = np.array(
            [[draw(coord) for _ in range(dim)] for _ in range(k)],
            dtype=np.float64,
        )
        weights = np.array([draw(weight) for _ in range(k)], dtype=np.float64)
        messages.append(
            CentroidMessage(
                cell_id="cell",
                partition=partition,
                summary=WeightedCentroidSet(
                    centroids=centroids,
                    weights=weights,
                    source=f"cell/P{partition}",
                ),
                n_partitions=n_partitions,
            )
        )
    return messages


def assert_sets_bit_identical(a: WeightedCentroidSet, b: WeightedCentroidSet):
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.weights, b.weights)


class TestTreeVersusOneShotMerge:
    @pytest.mark.parametrize("kernel", ["dense", "hamerly"])
    @given(messages=partition_streams())
    @settings(max_examples=25, deadline=None)
    def test_final_models_bit_identical(self, kernel, messages):
        """(a) swapping in the tree sink changes no bit of any model."""
        plain = MergeKMeansSink(k=3, kernel=kernel)
        tree = CoresetTreeSink(k=3, kernel=kernel, query_every=1)
        for sink in (plain, tree):
            for message in messages:
                sink.consume(message)
            sink.consume(Watermark("cell", n_partitions=len(messages)))
        expected = plain.result()["cell"]
        actual = tree.result()["cell"]
        np.testing.assert_array_equal(expected.centroids, actual.centroids)
        np.testing.assert_array_equal(expected.weights, actual.weights)
        assert expected.mse == actual.mse
        assert expected.extra["merge_iterations"] == (
            actual.extra["merge_iterations"]
        )

    @given(messages=partition_streams())
    @settings(max_examples=25, deadline=None)
    def test_query_weight_matches_final_model_weight(self, messages):
        sink = CoresetTreeSink(k=3)
        for message in messages:
            sink.consume(message)
        models = sink.result()
        total = sum(m.summary.total_weight for m in messages)
        assert models["cell"].weights.sum() == pytest.approx(total)
        query = sink.final_queries["cell"]
        assert query.upto == len(messages)
        assert query.model.total_weight == pytest.approx(total)


class TestWeightConservation:
    @given(messages=partition_streams(min_partitions=2))
    @settings(max_examples=25, deadline=None)
    def test_every_node_conserves_weight(self, messages):
        """(b) each node's mass equals the mass of the leaves it covers."""
        tree = CoresetTree(k=3)
        for message in messages:
            tree.offer(message)
        mass = [m.summary.total_weight for m in messages]
        for node in tree.nodes():
            covered = sum(mass[node.start : node.end])
            assert node.total_weight == pytest.approx(
                covered, rel=1e-9, abs=1e-9
            )

    @given(messages=partition_streams(min_partitions=2))
    @settings(max_examples=25, deadline=None)
    def test_window_queries_conserve_weight(self, messages):
        tree = CoresetTree(k=3)
        for message in messages:
            tree.offer(message)
        mass = [m.summary.total_weight for m in messages]
        for last_n in (1, 2, len(messages)):
            answer = tree.query_window(last_n)
            covered = sum(mass[answer.start : answer.upto])
            assert answer.model.total_weight == pytest.approx(
                covered, rel=1e-9, abs=1e-9
            )


class TestPrefixQueryDeterminism:
    @given(messages=partition_streams(min_partitions=2))
    @settings(max_examples=20, deadline=None)
    def test_prefix_query_equals_fresh_tree_of_prefix(self, messages):
        """(c) querying mid-stream ≡ querying a tree holding only the
        prefix — the live tree's extra partitions never leak in."""
        live = CoresetTree(k=3)
        checkpoints = {}
        for message in messages:
            live.offer(message)
            checkpoints[live.n_inserted] = live.query_prefix()
        for upto, answer in checkpoints.items():
            fresh = CoresetTree(k=3)
            for message in messages[:upto]:
                fresh.offer(message)
            assert_sets_bit_identical(
                answer.model, fresh.query_prefix().model
            )

    @given(
        messages=partition_streams(min_partitions=2),
        order_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_arrival_order_is_irrelevant(self, messages, order_seed):
        """Out-of-order delivery (cloned partials, either backend) builds
        the same tree: answers are bit-identical to in-order delivery."""
        in_order = CoresetTree(k=3)
        for message in messages:
            in_order.offer(message)
        shuffled = CoresetTree(k=3)
        permuted = list(messages)
        np.random.default_rng(order_seed).shuffle(permuted)
        for message in permuted:
            shuffled.offer(message)
        assert shuffled.n_inserted == in_order.n_inserted
        assert shuffled.n_stashed == 0
        assert_sets_bit_identical(
            in_order.query_prefix().model, shuffled.query_prefix().model
        )
        for last_n in (1, len(messages)):
            assert_sets_bit_identical(
                in_order.query_window(last_n).model,
                shuffled.query_window(last_n).model,
            )

    @given(messages=partition_streams(min_partitions=2))
    @settings(max_examples=15, deadline=None)
    def test_kernels_bit_identical_on_node_merges(self, messages):
        trees = {}
        for kernel in ("dense", "hamerly", "elkan"):
            tree = CoresetTree(k=3, kernel=kernel)
            for message in messages:
                tree.offer(message)
            trees[kernel] = tree.query_prefix().model
        assert_sets_bit_identical(trees["dense"], trees["hamerly"])
        assert_sets_bit_identical(trees["dense"], trees["elkan"])
