"""Chaos tests for the shard-per-cell coordinator/worker runtime.

The acceptance bar: with a seeded :class:`FaultPlan` that SIGKILLs one
of >= 3 workers mid-stream, the run completes and the final per-cell
models are **bit-identical** to a fault-free shard run — same centroids,
same weights, down to the last float bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.faults import FaultPlan, FaultSpec
from repro.stream.kmeans_ops import run_partial_merge_stream
from repro.stream.metrics import RecoveryEvent, ShardWorkerStats
from repro.stream.query import Query, QueryError
from repro.stream.shard import (
    SHARD_METHOD,
    CellTask,
    ShardConfig,
    cell_journal_path,
    run_sharded,
)
from repro.stream.supervision import RetryPolicy
from repro.stream.tracing import metrics_to_dict
from tests.conftest import make_blobs


def small_cells(n_cells=6, n_points=200, dim=2):
    centers = np.array([[0.0] * dim, [8.0] * dim, [-8.0] * dim])
    return {
        f"lat{i}lon0": make_blobs(n_points // 3, centers, scale=0.5, seed=100 + i)
        + i * 50.0
        for i in range(n_cells)
    }


def heavy_cells(n_cells=4):
    """Cells big enough that a worker is mid-cell for a few hundred ms."""
    centers = np.array([[0.0] * 8, [9.0] * 8])
    return {
        f"lat{i}lon0": make_blobs(2_000, centers, scale=0.8, seed=200 + i)
        for i in range(n_cells)
    }  # 4000 points per cell (2 blobs x 2000)


def fast_config(n_workers=3, **overrides):
    defaults = dict(
        n_workers=n_workers,
        heartbeat_interval=0.05,
        heartbeat_timeout=0.5,
    )
    defaults.update(overrides)
    return ShardConfig(**defaults)


def assert_models_bit_identical(expected, actual):
    assert sorted(expected) == sorted(actual)
    for cell_id, model in expected.items():
        other = actual[cell_id]
        assert model.centroids.tobytes() == other.centroids.tobytes(), cell_id
        assert model.weights.tobytes() == other.weights.tobytes(), cell_id
        assert model.mse == other.mse, cell_id


@pytest.fixture(scope="module")
def cells():
    return small_cells()


@pytest.fixture(scope="module")
def baseline(cells):
    """Fault-free shard run the chaos runs must match bit for bit."""
    models, metrics = run_sharded(
        cells, k=4, n_chunks=4, seed=42, config=fast_config(3)
    )
    return models, metrics


class TestFaultFree:
    def test_all_cells_clustered(self, cells, baseline):
        models, metrics = baseline
        assert sorted(models) == sorted(cells)
        for model in models.values():
            assert model.method == SHARD_METHOD
            assert model.k == 4
            assert not model.extra.get("incomplete")
        assert metrics.backend == "shards"
        assert len(metrics.shards) == 3
        assert not metrics.recoveries

    def test_worker_count_does_not_change_bits(self, cells, baseline):
        models, _ = baseline
        for n_workers in (1, 2):
            again, _ = run_sharded(
                cells, k=4, n_chunks=4, seed=42, config=fast_config(n_workers)
            )
            assert_models_bit_identical(models, again)

    def test_same_seed_same_bits_different_seed_different(self, cells):
        config = fast_config(2)
        a, _ = run_sharded(cells, k=4, n_chunks=4, seed=9, config=config)
        b, _ = run_sharded(cells, k=4, n_chunks=4, seed=9, config=config)
        c, _ = run_sharded(cells, k=4, n_chunks=4, seed=10, config=config)
        assert_models_bit_identical(a, b)
        assert any(
            a[cid].centroids.tobytes() != c[cid].centroids.tobytes() for cid in a
        )

    def test_empty_cell_yields_empty_model(self):
        cells = {
            "lat0lon0": make_blobs(60, np.array([[0.0, 0.0]]), seed=1),
            "lat1lon0": np.zeros((0, 2)),
        }
        models, _ = run_sharded(
            cells, k=3, n_chunks=2, seed=0, config=fast_config(2)
        )
        assert models["lat1lon0"].extra.get("empty_cell")
        assert models["lat1lon0"].weights.sum() == 0.0

    def test_mse_matches_plan_engine_quality(self, cells, baseline):
        """Shard models are real clusterings, not comparable bits only."""
        models, _ = baseline
        plan_models, _ = run_partial_merge_stream(
            cells, k=4, restarts=1, n_chunks=4, seed=42
        )
        for cell_id in models:
            # Different chunk RNG streams, but the same algorithm on the
            # same data: quality must land in the same ballpark.
            assert models[cell_id].mse < plan_models[cell_id].mse * 3 + 1e-9


class TestKillChaos:
    def test_sigkill_mid_stream_is_bit_identical(self, cells, baseline):
        """The ISSUE acceptance test: kill 1 of 3 workers mid-stream."""
        models, _ = baseline
        plan = FaultPlan(
            seed=7, specs=[FaultSpec(target="worker#1", kind="kill", at_index=2)]
        )
        chaos, metrics = run_sharded(
            cells, k=4, n_chunks=4, seed=42, config=fast_config(3), fault_plan=plan
        )
        assert_models_bit_identical(models, chaos)
        assert not any(m.extra.get("incomplete") for m in chaos.values())
        assert len(metrics.recoveries) == 1
        event = metrics.recoveries[0]
        assert event.worker_name == "worker#1"
        assert event.reason == "dead-pid"
        assert event.cells_reassigned >= 1
        assert event.recovery_seconds >= 0.0
        lost = [s for s in metrics.shards if s.name == "worker#1"]
        assert lost and lost[0].lost_reason == "dead-pid"

    def test_journal_replay_adopts_completed_partitions(self, cells, baseline):
        """A kill after some partitions completes means replays, not redos."""
        models, _ = baseline
        plan = FaultPlan(
            seed=7, specs=[FaultSpec(target="worker#0", kind="kill", at_index=3)]
        )
        chaos, metrics = run_sharded(
            cells, k=4, n_chunks=4, seed=42, config=fast_config(3), fault_plan=plan
        )
        assert_models_bit_identical(models, chaos)
        replayed = sum(s.partitions_replayed for s in metrics.shards)
        assert replayed >= 1
        assert metrics.total_replayed_records >= 1

    def test_kill_with_single_worker_respawns(self, cells, baseline):
        models, _ = baseline
        plan = FaultPlan(
            seed=3, specs=[FaultSpec(target="worker#0", kind="kill", at_index=5)]
        )
        chaos, metrics = run_sharded(
            cells, k=4, n_chunks=4, seed=42, config=fast_config(1), fault_plan=plan
        )
        assert_models_bit_identical(models, chaos)
        assert len(metrics.shards) == 2  # the original and its replacement
        assert metrics.shards[1].respawns == 1

    def test_respawn_off_raises(self, cells):
        from repro.stream.errors import ShardError

        plan = FaultPlan(
            seed=3, specs=[FaultSpec(target="worker#0", kind="kill", at_index=0)]
        )
        with pytest.raises(ShardError, match="worker#0"):
            run_sharded(
                cells,
                k=4,
                n_chunks=4,
                seed=42,
                config=fast_config(1, respawn=False),
                fault_plan=plan,
            )


class TestHeartbeatChaos:
    def test_heartbeat_drop_recovers_bit_identical(self):
        """A silent-but-alive worker is fenced and its cells reassigned."""
        cells = heavy_cells()
        config = fast_config(2, heartbeat_interval=0.03, heartbeat_timeout=0.15)
        models, _ = run_sharded(
            cells, k=8, n_chunks=6, restarts=2, seed=1, config=config
        )
        plan = FaultPlan(
            seed=3,
            specs=[
                FaultSpec(target="worker#0", kind="heartbeat-drop", at_index=0)
            ],
        )
        chaos, metrics = run_sharded(
            cells,
            k=8,
            n_chunks=6,
            restarts=2,
            seed=1,
            config=config,
            fault_plan=plan,
        )
        assert_models_bit_identical(models, chaos)
        assert any(
            event.reason == "missed-heartbeats" for event in metrics.recoveries
        )


class TestDegradeTier:
    def test_exhausted_reassignment_budget_degrades(self, cells):
        # One worker, killed at its very first partition, with a budget of
        # one attempt per cell and no second chance: every cell the dead
        # worker owned is salvaged from (empty) journals and marked.
        plan = FaultPlan(
            seed=3, specs=[FaultSpec(target="worker#0", kind="kill", at_index=0)]
        )
        config = fast_config(
            1, reassign_policy=RetryPolicy(max_retries=0), respawn=True
        )
        models, metrics = run_sharded(
            cells, k=4, n_chunks=4, seed=42, config=config, fault_plan=plan
        )
        assert sorted(models) == sorted(cells)
        incomplete = [c for c, m in models.items() if m.extra.get("incomplete")]
        assert incomplete
        assert sorted(metrics.incomplete_cells) == sorted(incomplete)
        for cell_id in incomplete:
            extra = models[cell_id].extra
            assert extra["expected_partitions"] == 4
            assert extra["missing_partitions"] == list(range(4))
        event = metrics.recoveries[0]
        assert event.cells_degraded == len(incomplete)

    def test_degrade_salvages_journaled_partitions(self, cells, baseline):
        # Killed mid-cell with no reassignment budget: the finished
        # partitions of the in-flight cell survive into the degraded model.
        models, _ = baseline
        plan = FaultPlan(
            seed=3, specs=[FaultSpec(target="worker#0", kind="kill", at_index=2)]
        )
        config = fast_config(
            1, reassign_policy=RetryPolicy(max_retries=0), respawn=True
        )
        degraded, metrics = run_sharded(
            cells, k=4, n_chunks=4, seed=42, config=config, fault_plan=plan
        )
        assert sorted(degraded) == sorted(cells)
        partial = [
            c
            for c, m in degraded.items()
            if m.extra.get("incomplete") and m.partitions > 0
        ]
        assert partial, "expected at least one partially salvaged cell"
        for cell_id in partial:
            extra = degraded[cell_id].extra
            assert 0 < len(extra["missing_partitions"]) < 4
            assert degraded[cell_id].partitions == 4 - len(
                extra["missing_partitions"]
            )


class TestTcpTransport:
    def test_tcp_matches_pipe_bits(self, cells, baseline):
        models, _ = baseline
        tcp, metrics = run_sharded(
            cells,
            k=4,
            n_chunks=4,
            seed=42,
            config=fast_config(2, transport="tcp"),
        )
        assert_models_bit_identical(models, tcp)
        assert all(s.pid > 0 for s in metrics.shards)

    def test_kill_chaos_over_tcp(self, cells, baseline):
        models, _ = baseline
        plan = FaultPlan(
            seed=7, specs=[FaultSpec(target="worker#1", kind="kill", at_index=2)]
        )
        chaos, metrics = run_sharded(
            cells,
            k=4,
            n_chunks=4,
            seed=42,
            config=fast_config(3, transport="tcp"),
            fault_plan=plan,
        )
        assert_models_bit_identical(models, chaos)
        assert metrics.recoveries


class TestMetricsAndTracing:
    def test_shard_stats_exported(self, baseline):
        _, metrics = baseline
        payload = metrics_to_dict(metrics)
        assert len(payload["shards"]) == 3
        for entry in payload["shards"]:
            assert set(entry) >= {
                "name",
                "pid",
                "cells_owned",
                "cells_completed",
                "partitions_computed",
                "heartbeats",
            }
        assert payload["resilience"]["total_reassignments"] == 0
        assert payload["resilience"]["total_replayed_records"] == 0

    def test_recovery_events_exported(self, cells):
        plan = FaultPlan(
            seed=7, specs=[FaultSpec(target="worker#1", kind="kill", at_index=2)]
        )
        _, metrics = run_sharded(
            cells, k=4, n_chunks=4, seed=42, config=fast_config(3), fault_plan=plan
        )
        payload = metrics_to_dict(metrics)
        assert payload["recoveries"]
        event = payload["recoveries"][0]
        assert set(event) == {
            "worker_name",
            "reason",
            "cells_reassigned",
            "cells_degraded",
            "replayed_records",
            "recovery_seconds",
        }
        assert payload["resilience"]["total_reassignments"] >= 1
        lines = "\n".join(metrics.summary_lines())
        assert "shard worker#1" in lines
        assert "recovery: worker#1" in lines


class TestWiring:
    def test_backend_shards_routes_run_partial_merge_stream(self, cells):
        models, outcome = run_partial_merge_stream(
            cells, k=4, restarts=1, n_chunks=4, seed=42, backend="shards", workers=2
        )
        assert outcome.metrics.backend == "shards"
        assert sorted(models) == sorted(cells)
        assert all(m.method == SHARD_METHOD for m in models.values())

    def test_env_var_routes_to_shards(self, cells, monkeypatch):
        from repro.stream.mp import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "shards")
        _, outcome = run_partial_merge_stream(
            cells, k=4, restarts=1, n_chunks=4, seed=42, workers=2
        )
        assert outcome.metrics.backend == "shards"

    def test_query_with_shards(self, cells, baseline):
        result = (
            Query.scan_cells(cells)
            .partition(4)
            .cluster(k=4, restarts=1)
            .merge()
            .with_seed(42)
            .with_shards(2)
            .execute()
        )
        assert result.execution.metrics.backend == "shards"
        # Query's shard route passes its own defaults (restarts from
        # cluster()), which match run_sharded(seeding="random").
        direct, _ = run_sharded(
            cells,
            k=4,
            restarts=1,
            seeding="random",
            n_chunks=4,
            seed=42,
            config=fast_config(2),
        )
        assert_models_bit_identical(direct, result.models)

    def test_query_with_shards_chaos(self, cells):
        plan = FaultPlan(
            seed=7, specs=[FaultSpec(target="worker#1", kind="kill", at_index=2)]
        )
        query = (
            Query.scan_cells(cells)
            .partition(4)
            .cluster(k=4, restarts=1)
            .merge()
            .with_seed(42)
        )
        fault_free = query.with_shards(3).execute()
        chaos = (
            Query.scan_cells(cells)
            .partition(4)
            .cluster(k=4, restarts=1)
            .merge()
            .with_seed(42)
            .with_shards(3)
            .execute(fault_plan=plan)
        )
        assert_models_bit_identical(fault_free.models, chaos.models)
        assert chaos.execution.metrics.recoveries

    def test_query_shards_from_buckets(self, tmp_path):
        from repro.data.generator import generate_cell_points
        from repro.data.gridcell import GridCell, GridCellId
        from repro.data.gridio import write_bucket_dir

        grid = [
            GridCell(GridCellId(10, 20), generate_cell_points(200, seed=1)),
            GridCell(GridCellId(11, 20), generate_cell_points(150, seed=2)),
        ]
        write_bucket_dir(tmp_path / "buckets", grid)
        result = (
            Query.scan_buckets(str(tmp_path / "buckets"))
            .partition(3)
            .cluster(k=3, restarts=1)
            .merge()
            .with_seed(5)
            .with_shards(2)
            .execute()
        )
        assert sorted(result.models) == ["lat10lon20", "lat11lon20"]

    def test_with_shards_conflicts_with_backend(self, cells):
        query = Query.scan_cells(cells).partition(4).cluster(k=4)
        with pytest.raises(QueryError, match="conflicts"):
            query.with_backend("processes").with_shards(2)
        with pytest.raises(QueryError, match="with_shards"):
            Query.scan_cells(cells).with_backend("shards")

    def test_with_shards_rejects_checkpoint_and_prefix_queries(self, cells):
        base = (
            Query.scan_cells(cells).partition(4).cluster(k=4).with_shards(2)
        )
        with pytest.raises(QueryError, match="checkpoint"):
            base.checkpoint("/tmp/nope").execute()
        query = (
            Query.scan_cells(cells)
            .partition(4)
            .cluster(k=4)
            .with_shards(2)
            .with_prefix_queries(every=1)
        )
        with pytest.raises(QueryError, match="prefix"):
            query.execute()

    def test_executor_and_planner_reject_shards(self, cells):
        from repro.stream.graph import DataflowGraph
        from repro.stream.kmeans_ops import build_partial_merge_graph
        from repro.stream.planner import Planner

        graph = build_partial_merge_graph(cells, k=4, restarts=1, n_chunks=4)
        with pytest.raises(ValueError, match="not plan-based"):
            Planner().plan(graph, backend="shards")


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            ShardConfig(n_workers=0)
        with pytest.raises(ValueError, match="transport"):
            ShardConfig(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="heartbeat_interval"):
            ShardConfig(heartbeat_interval=0.0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            ShardConfig(heartbeat_interval=1.0, heartbeat_timeout=0.5)
        with pytest.raises(ValueError, match="stall_timeout"):
            ShardConfig(stall_timeout=-1.0)

    def test_with_shards_validates_count(self, ):
        cells = small_cells(2)
        with pytest.raises(QueryError, match="shards"):
            Query.scan_cells(cells).with_shards(0)

    def test_journal_paths_are_distinct_and_safe(self, tmp_path):
        a = cell_journal_path(tmp_path, "lat1lon2", 0)
        b = cell_journal_path(tmp_path, "lat1lon2", 1)
        c = cell_journal_path(tmp_path, "lat1/lon2", 0)
        assert a != b
        assert a.parent == b.parent
        assert c.name != a.name
        assert "/" not in c.name

    def test_cell_task_is_picklable(self, tmp_path):
        import pickle

        task = CellTask(
            cell_id="lat0lon0",
            epoch=0,
            points=np.zeros((4, 2)),
            n_chunks=2,
            k=2,
            merge_k=2,
            restarts=1,
            seeding="random",
            criterion=None,
            max_iter=10,
            kernel=None,
            exact=None,
            entropy=7,
            spawn_key=(),
            journal_path=str(tmp_path / "x.rjl"),
            prior_journals=(),
            fsync=False,
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone.cell_id == task.cell_id
        assert clone.points.tobytes() == task.points.tobytes()

    def test_metric_dataclasses(self):
        stats = ShardWorkerStats(name="w")
        assert stats.pid == 0 and stats.heartbeats == 0
        event = RecoveryEvent(
            worker_name="w",
            reason="dead-pid",
            cells_reassigned=1,
            cells_degraded=0,
            replayed_records=2,
            recovery_seconds=0.5,
        )
        assert event.replayed_records == 2
