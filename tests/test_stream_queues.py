"""Unit tests for SmartQueue."""

from __future__ import annotations

import threading
import time

import pytest

from repro.stream.errors import QueueClosedError, QueueTimeout
from repro.stream.queues import END_OF_STREAM, SmartQueue


class TestBasics:
    def test_fifo_order(self):
        queue = SmartQueue(capacity=8)
        queue.register_producer()
        for value in (1, 2, 3):
            queue.put(value)
        queue.producer_done()
        assert [queue.get() for __ in range(3)] == [1, 2, 3]
        assert queue.get() is END_OF_STREAM

    def test_iteration_stops_at_eos(self):
        queue = SmartQueue()
        queue.register_producer()
        queue.put("a")
        queue.put("b")
        queue.producer_done()
        assert list(queue) == ["a", "b"]

    def test_len_reflects_buffer(self):
        queue = SmartQueue()
        queue.register_producer()
        queue.put(1)
        queue.put(2)
        assert len(queue) == 2
        queue.get()
        assert len(queue) == 1

    def test_rejects_capacity_zero(self):
        with pytest.raises(ValueError, match="capacity"):
            SmartQueue(capacity=0)


class TestMultiProducer:
    def test_closes_only_after_all_producers_done(self):
        queue = SmartQueue()
        queue.register_producer()
        queue.register_producer()
        queue.put(1)
        queue.producer_done()
        assert not queue.closed
        queue.put(2)  # second producer still live
        queue.producer_done()
        assert queue.closed
        assert queue.get() == 1
        assert queue.get() == 2
        assert queue.get() is END_OF_STREAM

    def test_put_after_close_raises(self):
        queue = SmartQueue()
        queue.register_producer()
        queue.producer_done()
        with pytest.raises(QueueClosedError, match="closed"):
            queue.put(1)

    def test_extra_producer_done_raises(self):
        queue = SmartQueue()
        queue.register_producer()
        queue.producer_done()
        with pytest.raises(QueueClosedError, match="more times"):
            queue.producer_done()


class TestBackpressure:
    def test_put_blocks_until_consumer_drains(self):
        queue = SmartQueue(capacity=1)
        queue.register_producer()
        queue.put(1)
        unblocked = threading.Event()

        def producer():
            queue.put(2)
            unblocked.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not unblocked.is_set()  # still blocked on full buffer
        assert queue.get() == 1
        thread.join(timeout=2)
        assert unblocked.is_set()
        assert queue.stats.producer_block_seconds > 0.0

    def test_put_timeout_raises(self):
        queue = SmartQueue(capacity=1)
        queue.register_producer()
        queue.put(1)
        with pytest.raises(QueueClosedError, match="timed out"):
            queue.put(2, timeout=0.05)

    def test_get_timeout_raises(self):
        queue = SmartQueue()
        queue.register_producer()
        with pytest.raises(QueueClosedError, match="timed out"):
            queue.get(timeout=0.05)

    def test_put_timeout_is_distinguishable_from_close(self):
        """A timeout must raise QueueTimeout, not look like a plan abort."""
        queue = SmartQueue(capacity=1)
        queue.register_producer()
        queue.put(1)
        with pytest.raises(QueueTimeout, match="backpressure"):
            queue.put(2, timeout=0.05)
        # Still a QueueClosedError subclass, so legacy handlers keep working.
        assert issubclass(QueueTimeout, QueueClosedError)

    def test_get_timeout_is_distinguishable_from_close(self):
        queue = SmartQueue()
        queue.register_producer()
        with pytest.raises(QueueTimeout, match="starved"):
            queue.get(timeout=0.05)

    def test_abort_still_raises_plain_closed_error(self):
        queue = SmartQueue()
        queue.register_producer()
        queue.abort()
        with pytest.raises(QueueClosedError) as excinfo:
            queue.get(timeout=0.05)
        assert not isinstance(excinfo.value, QueueTimeout)

    def test_get_blocks_until_item_arrives(self):
        queue = SmartQueue()
        queue.register_producer()
        received = []

        def consumer():
            received.append(queue.get())

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.put("late")
        thread.join(timeout=2)
        assert received == ["late"]
        assert queue.stats.consumer_block_seconds > 0.0


class TestAbort:
    def test_abort_unblocks_consumer(self):
        queue = SmartQueue()
        queue.register_producer()
        errors = []

        def consumer():
            try:
                queue.get()
            except QueueClosedError as exc:
                errors.append(exc)

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.abort()
        thread.join(timeout=2)
        assert len(errors) == 1

    def test_abort_unblocks_producer(self):
        queue = SmartQueue(capacity=1)
        queue.register_producer()
        queue.put(1)
        errors = []

        def producer():
            try:
                queue.put(2)
            except QueueClosedError as exc:
                errors.append(exc)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.abort()
        thread.join(timeout=2)
        assert len(errors) == 1

    def test_abort_drops_buffer(self):
        queue = SmartQueue()
        queue.register_producer()
        queue.put(1)
        queue.abort()
        with pytest.raises(QueueClosedError, match="aborted"):
            queue.get()

    def test_closed_after_abort(self):
        queue = SmartQueue()
        queue.abort()
        assert queue.closed


class TestStats:
    def test_counts_and_high_water(self):
        queue = SmartQueue(capacity=8)
        queue.register_producer()
        for value in range(5):
            queue.put(value)
        for __ in range(2):
            queue.get()
        assert queue.stats.puts == 5
        assert queue.stats.gets == 2
        assert queue.stats.high_water_mark == 5


class TestConcurrency:
    def test_many_producers_many_consumers(self):
        queue = SmartQueue(capacity=4)
        n_producers, items_each = 4, 50
        for __ in range(n_producers):
            queue.register_producer()
        consumed: list[int] = []
        lock = threading.Lock()

        def producer(base: int):
            for i in range(items_each):
                queue.put(base * 1000 + i)
            queue.producer_done()

        def consumer():
            while True:
                item = queue.get()
                if item is END_OF_STREAM:
                    return
                with lock:
                    consumed.append(item)

        threads = [
            threading.Thread(target=producer, args=(p,), daemon=True)
            for p in range(n_producers)
        ] + [threading.Thread(target=consumer, daemon=True) for __ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(consumed) == n_producers * items_each
        assert len(set(consumed)) == n_producers * items_each
