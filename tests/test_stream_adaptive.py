"""Tests for the adaptive (re-optimizing) executor."""

from __future__ import annotations

import time

import pytest

from repro.stream.adaptive import AdaptiveExecutor
from repro.stream.errors import ExecutionError
from repro.stream.graph import DataflowGraph
from repro.stream.operators import FunctionTransform, Sink, Source, Transform
from repro.stream.planner import Planner
from repro.stream.scheduler import ResourceManager


class RangeSource(Source):
    def __init__(self, n: int, name: str = "src"):
        super().__init__(name)
        self.n = n

    def generate(self):
        yield from range(self.n)


class CollectSink(Sink):
    def __init__(self, name: str = "sink"):
        super().__init__(name)
        self.items = []

    def consume(self, item):
        self.items.append(item)

    def result(self):
        return sorted(self.items)


class SlowTransform(Transform):
    """Deliberately slow so its input queue backs up."""

    def __init__(self, delay: float = 0.002, name: str = "slow"):
        super().__init__(name)
        self.delay = delay

    def clone(self):
        return SlowTransform(self.delay, self.name)

    def process(self, item):
        time.sleep(self.delay)
        return [item]


class ExplodingTransform(Transform):
    def __init__(self, name: str = "boom"):
        super().__init__(name)

    def process(self, item):
        raise RuntimeError("deliberate failure")


def slow_graph(n: int = 120) -> DataflowGraph:
    graph = DataflowGraph()
    graph.add(RangeSource(n))
    graph.add(SlowTransform(), cost_hint=8.0)
    graph.add(CollectSink())
    graph.connect("src", "slow")
    graph.connect("slow", "sink")
    return graph


def plan_single_clone(graph: DataflowGraph):
    """A plan that starts with exactly one instance of the transform."""
    return Planner(ResourceManager(worker_slots=1)).plan(graph)


class TestAdaptiveExecutor:
    def test_results_correct_with_adaptation(self):
        executor = AdaptiveExecutor(
            max_extra_clones=2, occupancy_threshold=0.2, patience=1
        )
        outcome = executor.run(plan_single_clone(slow_graph(120)))
        assert outcome.value == list(range(120))

    def test_clones_added_under_backpressure(self):
        executor = AdaptiveExecutor(
            max_extra_clones=2,
            occupancy_threshold=0.2,
            sample_interval=0.005,
            patience=1,
        )
        outcome = executor.run(plan_single_clone(slow_graph(150)))
        assert len(executor.events) >= 1
        event = executor.events[0]
        assert event.logical_name == "slow"
        assert "adaptive" in event.clone_name
        adaptive_ops = [
            op for op in outcome.metrics.operators if "adaptive" in op.name
        ]
        assert len(adaptive_ops) == len(executor.events)
        assert sum(op.items_in for op in adaptive_ops) > 0

    def test_clone_cap_respected(self):
        executor = AdaptiveExecutor(
            max_extra_clones=1,
            occupancy_threshold=0.1,
            sample_interval=0.003,
            patience=1,
        )
        executor.run(plan_single_clone(slow_graph(150)))
        assert len(executor.events) <= 1

    def test_no_adaptation_when_not_hot(self):
        graph = DataflowGraph()
        graph.add(RangeSource(30))
        graph.add(FunctionTransform("fast", lambda i: [i]))
        graph.add(CollectSink())
        graph.connect("src", "fast")
        graph.connect("fast", "sink")
        executor = AdaptiveExecutor(
            max_extra_clones=3, occupancy_threshold=0.95, patience=50
        )
        outcome = executor.run(plan_single_clone(graph))
        assert outcome.value == list(range(30))
        assert executor.events == []

    def test_zero_extra_clones_behaves_like_base(self):
        executor = AdaptiveExecutor(max_extra_clones=0)
        outcome = executor.run(plan_single_clone(slow_graph(40)))
        assert outcome.value == list(range(40))
        assert executor.events == []

    def test_failure_propagates_and_terminates(self):
        graph = DataflowGraph()
        graph.add(RangeSource(50))
        graph.add(ExplodingTransform())
        graph.add(CollectSink())
        graph.connect("src", "boom")
        graph.connect("boom", "sink")
        executor = AdaptiveExecutor()
        started = time.perf_counter()
        with pytest.raises(ExecutionError):
            executor.run(plan_single_clone(graph))
        assert time.perf_counter() - started < 10.0

    def test_multi_stage_pipeline_terminates(self):
        graph = DataflowGraph()
        graph.add(RangeSource(60))
        graph.add(SlowTransform(delay=0.001, name="stage1"), cost_hint=4.0)
        graph.add(SlowTransform(delay=0.001, name="stage2"), cost_hint=4.0)
        graph.add(CollectSink())
        graph.connect("src", "stage1")
        graph.connect("stage1", "stage2")
        graph.connect("stage2", "sink")
        executor = AdaptiveExecutor(
            max_extra_clones=1, occupancy_threshold=0.3, patience=1
        )
        outcome = executor.run(plan_single_clone(graph))
        assert outcome.value == list(range(60))

    def test_validation(self):
        with pytest.raises(ValueError, match="max_extra_clones"):
            AdaptiveExecutor(max_extra_clones=-1)
        with pytest.raises(ValueError, match="occupancy_threshold"):
            AdaptiveExecutor(occupancy_threshold=0.0)
        with pytest.raises(ValueError, match="occupancy_threshold"):
            AdaptiveExecutor(occupancy_threshold=1.5)
        with pytest.raises(ValueError, match="patience"):
            AdaptiveExecutor(patience=0)
        with pytest.raises(ValueError, match="sample_interval"):
            AdaptiveExecutor(sample_interval=0.0)

    def test_empty_plan_rejected(self):
        from repro.stream.planner import PhysicalPlan

        with pytest.raises(ExecutionError):
            AdaptiveExecutor().run(
                PhysicalPlan(operators=[], queues={}, clone_counts={})
            )

    def test_events_reset_between_runs(self):
        """A quiet second run must not inherit the first run's events."""
        executor = AdaptiveExecutor(
            max_extra_clones=2,
            occupancy_threshold=0.2,
            sample_interval=0.005,
            patience=1,
        )
        executor.run(plan_single_clone(slow_graph(150)))
        first = list(executor.events)
        graph = DataflowGraph()
        graph.add(RangeSource(10))
        graph.add(FunctionTransform("fast", lambda i: [i]))
        graph.add(CollectSink())
        graph.connect("src", "fast")
        graph.connect("fast", "sink")
        outcome = executor.run(plan_single_clone(graph))
        assert outcome.value == list(range(10))
        assert executor.events == []
        assert first is not executor.events

    def test_non_parallelizable_transform_never_cloned(self):
        class PinnedTransform(SlowTransform):
            parallelizable = False

        graph = DataflowGraph()
        graph.add(RangeSource(80))
        graph.add(PinnedTransform(name="pinned"), cost_hint=8.0)
        graph.add(CollectSink())
        graph.connect("src", "pinned")
        graph.connect("pinned", "sink")
        executor = AdaptiveExecutor(
            max_extra_clones=3,
            occupancy_threshold=0.1,
            sample_interval=0.002,
            patience=1,
        )
        outcome = executor.run(plan_single_clone(graph))
        assert outcome.value == list(range(80))
        assert executor.events == []
        assert all(
            "adaptive" not in op.name for op in outcome.metrics.operators
        )

    def test_event_fields_are_plausible(self):
        executor = AdaptiveExecutor(
            max_extra_clones=2,
            occupancy_threshold=0.2,
            sample_interval=0.005,
            patience=1,
        )
        executor.run(plan_single_clone(slow_graph(150)))
        names = [event.clone_name for event in executor.events]
        assert len(names) == len(set(names))
        for event in executor.events:
            assert event.at_seconds >= 0.0
            assert event.queue_occupancy >= executor.occupancy_threshold
            assert event.logical_name == "slow"

    def test_adaptive_partial_merge_pipeline(self, blobs_6d):
        """The paper's query under the adaptive executor."""
        import numpy as np

        from repro.stream.kmeans_ops import build_partial_merge_graph

        cells = {"cell": blobs_6d}
        graph = build_partial_merge_graph(
            cells, k=5, restarts=2, n_chunks=6, seed=0, max_iter=50
        )
        plan = Planner(ResourceManager(worker_slots=1)).plan(graph)
        executor = AdaptiveExecutor(
            max_extra_clones=2, occupancy_threshold=0.1, patience=1,
            sample_interval=0.002,
        )
        outcome = executor.run(plan)
        models = outcome.value
        assert models["cell"].weights.sum() == pytest.approx(
            blobs_6d.shape[0]
        )
