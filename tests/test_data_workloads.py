"""Tests for the multi-cell workload builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.workloads import build_monthly_workload


class TestBuildMonthlyWorkload:
    def test_cell_count_and_ids(self):
        workload = build_monthly_workload(n_cells=8, seed=0)
        assert workload.n_cells == 8
        assert set(workload.cells) == set(workload.cell_ids)
        for key, cell_id in workload.cell_ids.items():
            assert cell_id.key == key

    def test_sizes_respect_bounds(self):
        workload = build_monthly_workload(
            n_cells=20, median_points=500, min_points=100,
            max_points=2_000, seed=1,
        )
        for points in workload.cells.values():
            assert 100 <= points.shape[0] <= 2_000

    def test_sizes_are_skewed(self):
        workload = build_monthly_workload(
            n_cells=40, median_points=1_000, sigma=1.0,
            min_points=50, max_points=100_000, seed=2,
        )
        dist = workload.size_distribution()
        # Heavy tail: the max well above the median.
        assert dist["max"] > 2 * dist["median"]

    def test_total_points(self):
        workload = build_monthly_workload(n_cells=5, seed=3)
        assert workload.total_points == sum(
            p.shape[0] for p in workload.cells.values()
        )

    def test_deterministic(self):
        a = build_monthly_workload(n_cells=4, seed=9)
        b = build_monthly_workload(n_cells=4, seed=9)
        assert set(a.cells) == set(b.cells)
        for key in a.cells:
            np.testing.assert_array_equal(a.cells[key], b.cells[key])

    def test_distinct_locations(self):
        workload = build_monthly_workload(n_cells=30, seed=4)
        assert len(set(workload.cell_ids.values())) == 30

    def test_validation(self):
        with pytest.raises(ValueError, match="n_cells"):
            build_monthly_workload(n_cells=0)
        with pytest.raises(ValueError, match="median_points"):
            build_monthly_workload(median_points=10, min_points=100)
