"""Dedicated tests for :mod:`repro.stream.scheduler`.

``test_stream_scheduler_metrics.py`` covers the happy paths; this suite
pins down the boundary behaviour the planner relies on: the CPU-count
default for ``worker_slots=0``, frozen-dataclass immutability, and the
monotonicity/consistency laws connecting ``max_points_per_partition``
and ``partitions_for``.
"""

from __future__ import annotations

from unittest import mock

import pytest

from repro.stream.scheduler import DEFAULT_MEMORY_BUDGET, ResourceManager


class TestWorkerSlotDefaulting:
    def test_zero_slots_resolves_to_cpu_count(self):
        with mock.patch("repro.stream.scheduler.os.cpu_count", return_value=6):
            resources = ResourceManager(worker_slots=0)
        assert resources.worker_slots == 6

    def test_unknown_cpu_count_falls_back_to_one(self):
        """``os.cpu_count()`` may return None; the manager must not."""
        with mock.patch(
            "repro.stream.scheduler.os.cpu_count", return_value=None
        ):
            resources = ResourceManager(worker_slots=0)
        assert resources.worker_slots == 1

    def test_explicit_slots_ignore_cpu_count(self):
        with mock.patch("repro.stream.scheduler.os.cpu_count", return_value=64):
            resources = ResourceManager(worker_slots=3)
        assert resources.worker_slots == 3


class TestImmutability:
    def test_frozen_after_construction(self):
        resources = ResourceManager()
        with pytest.raises(AttributeError):
            resources.worker_slots = 99
        with pytest.raises(AttributeError):
            resources.memory_budget_bytes = 2 * DEFAULT_MEMORY_BUDGET

    def test_equal_specs_compare_equal(self):
        """Value semantics: plans keyed on a manager stay stable."""
        a = ResourceManager(memory_budget_bytes=1 << 20, worker_slots=4)
        b = ResourceManager(memory_budget_bytes=1 << 20, worker_slots=4)
        assert a == b


class TestBudgetBoundaries:
    def test_minimum_accepted_budget(self):
        """1024 bytes is the documented floor; 1023 is rejected."""
        assert ResourceManager(memory_budget_bytes=1024).memory_budget_bytes
        with pytest.raises(ValueError, match="unreasonably small"):
            ResourceManager(memory_budget_bytes=1023)

    def test_capacity_monotone_in_budget(self):
        small = ResourceManager(memory_budget_bytes=1 << 20)
        large = ResourceManager(memory_budget_bytes=1 << 24)
        for dim in (1, 3, 6, 64):
            assert large.max_points_per_partition(
                dim
            ) >= small.max_points_per_partition(dim)

    def test_capacity_scales_linearly_with_budget(self):
        small = ResourceManager(memory_budget_bytes=1 << 20)
        large = ResourceManager(memory_budget_bytes=1 << 23)
        ratio = large.max_points_per_partition(
            6
        ) / small.max_points_per_partition(6)
        assert ratio == pytest.approx(8.0, rel=0.01)


class TestPartitioningLaws:
    def test_partitions_monotone_in_points(self):
        resources = ResourceManager(memory_budget_bytes=64 * 1024)
        previous = 0
        for n_points in (1, 10, 1_000, 50_000, 500_000):
            parts = resources.partitions_for(n_points, dim=6)
            assert parts >= previous
            previous = parts

    def test_partitions_never_exceed_points(self):
        """Even a 1-point capacity yields at most one partition per point."""
        resources = ResourceManager(memory_budget_bytes=1024)
        for n_points in (1, 7, 100):
            assert resources.partitions_for(n_points, dim=1000) <= n_points

    def test_single_point_needs_single_partition(self):
        resources = ResourceManager()
        assert resources.partitions_for(1, dim=6) == 1

    def test_partition_count_is_tight(self):
        """One fewer partition would overflow the per-partition budget."""
        resources = ResourceManager(memory_budget_bytes=256 * 1024)
        n_points, dim = 123_457, 6
        parts = resources.partitions_for(n_points, dim)
        cap = resources.max_points_per_partition(dim)
        if parts > 1:
            per_part_with_fewer = -(-n_points // (parts - 1))
            assert per_part_with_fewer > cap


class TestCloneBudget:
    def test_full_reservation_leaves_one_slot(self):
        resources = ResourceManager(worker_slots=4)
        assert resources.clones_available(reserved=4) == 1

    def test_zero_reservation_uses_all_slots(self):
        resources = ResourceManager(worker_slots=4)
        assert resources.clones_available(reserved=0) == 4

    def test_monotone_in_reserved(self):
        resources = ResourceManager(worker_slots=8)
        values = [resources.clones_available(r) for r in range(10)]
        assert values == sorted(values, reverse=True)
