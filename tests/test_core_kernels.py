"""Kernel layer tests: bit-identity, counters, selection, early abandon.

The load-bearing property is the determinism contract: every *exact*
kernel must produce bit-identical ``assignments``, ``centroids``, ``sse``
and ``iterations`` to the dense reference on every input — including
weighted merge-style configurations and empty-cluster repair paths —
because the engine's crash-resume and cross-backend determinism
guarantees are built on top of it.  The ``blas`` tier (``exact=False``)
waives bit-identity for speed and must instead stay within the
documented :func:`~repro.core.kernels.blas_mse_tolerance` bound.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kernels as kernels_module
from repro.core.kernels import (
    EXACT_ENV_VAR,
    KERNEL_ENV_VAR,
    BlasKernel,
    DenseKernel,
    ElkanKernel,
    HamerlyKernel,
    KernelCounters,
    aggregate_weighted_sums,
    available_kernels,
    blas_mse_tolerance,
    merge_counter_dicts,
    resolve_kernel,
)
from repro.core.kmeans import _repair_empty_clusters, lloyd
from repro.core.merge import merge_kmeans
from repro.core.model import WeightedCentroidSet
from repro.core.restarts import best_of_restarts

#: Exact-tier kernels checked bit-for-bit against the dense reference.
ALT_KERNELS = ("hamerly", "elkan")


def _assert_identical(ref, alt, label):
    assert alt.assignments.tobytes() == ref.assignments.tobytes(), label
    assert alt.centroids.tobytes() == ref.centroids.tobytes(), label
    assert alt.cluster_weights.tobytes() == ref.cluster_weights.tobytes(), label
    assert alt.sse == ref.sse, label
    assert alt.mse == ref.mse, label
    assert alt.iterations == ref.iterations, label
    assert alt.converged == ref.converged, label


def _assert_blas_close(ref, pts, seeds, label, **lloyd_kwargs):
    """The blas tier must stay within the documented MSE tolerance."""
    alt = lloyd(pts, seeds, kernel="blas", exact=False, **lloyd_kwargs)
    tol = blas_mse_tolerance(pts, ref.mse)
    assert abs(alt.mse - ref.mse) <= tol, (label, alt.mse, ref.mse, tol)
    return alt


# ---------------------------------------------------------------------------
# Bit-identity property tests
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", range(8))
def test_kernels_bit_identical_randomized(case):
    """Random (n, k, d, weights, seeding) cases: all kernels, same bits."""
    rng = np.random.default_rng(1000 + case)
    n = int(rng.integers(50, 800))
    k = int(rng.integers(2, min(24, n // 2)))
    d = int(rng.integers(1, 12))
    pts = rng.normal(scale=rng.uniform(0.5, 50.0), size=(n, d))
    weights = (
        None if case % 3 == 0 else rng.uniform(0.0, 5.0, size=n)
    )
    seeds = pts[rng.choice(n, size=k, replace=False)]
    max_iter = int(rng.integers(5, 60))
    ref = lloyd(pts, seeds, weights=weights, max_iter=max_iter, kernel="dense")
    for name in ALT_KERNELS:
        alt = lloyd(pts, seeds, weights=weights, max_iter=max_iter, kernel=name)
        _assert_identical(ref, alt, (name, case))
    _assert_blas_close(
        ref, pts, seeds, ("blas", case), weights=weights, max_iter=max_iter
    )


def test_kernels_bit_identical_clustered_data():
    """Well-separated clusters (the pruning-friendly case)."""
    rng = np.random.default_rng(7)
    centers = rng.uniform(-100, 100, size=(10, 6))
    pts = np.vstack(
        [c + rng.normal(scale=0.5, size=(200, 6)) for c in centers]
    )
    seeds = pts[rng.choice(pts.shape[0], size=10, replace=False)]
    ref = lloyd(pts, seeds, kernel="dense")
    for name in ALT_KERNELS:
        _assert_identical(ref, lloyd(pts, seeds, kernel=name), name)
    _assert_blas_close(ref, pts, seeds, "blas clustered")


def test_kernels_bit_identical_weighted_merge_configuration():
    """The merge step's shape: few heavy weighted points, duplicates."""
    rng = np.random.default_rng(11)
    # Pooled partial summaries: many near-duplicate centroids with
    # point-count weights, exactly what merge_kmeans clusters.
    base = rng.normal(size=(12, 4))
    pooled = np.vstack([base + rng.normal(scale=1e-3, size=base.shape)
                        for _ in range(8)])
    weights = rng.integers(1, 500, size=pooled.shape[0]).astype(float)
    partials = [
        WeightedCentroidSet(pooled[i::8], weights[i::8], source=f"P{i}")
        for i in range(8)
    ]
    ref = merge_kmeans(partials, k=12, kernel="dense")
    for name in ALT_KERNELS:
        alt = merge_kmeans(partials, k=12, kernel=name)
        assert alt.model.centroids.tobytes() == ref.model.centroids.tobytes()
        assert alt.model.weights.tobytes() == ref.model.weights.tobytes()
        assert alt.mse == ref.mse
        assert alt.iterations == ref.iterations


def test_kernels_bit_identical_through_empty_cluster_repair():
    """Seeds chosen so some clusters start (and stay) empty."""
    rng = np.random.default_rng(3)
    pts = np.vstack(
        [
            rng.normal(loc=0.0, scale=0.1, size=(100, 3)),
            rng.normal(loc=50.0, scale=0.1, size=(100, 3)),
        ]
    )
    # All seeds in one clump: the far clump's seeds go empty on iteration
    # one and the repair path must fire.
    seeds = np.repeat(pts[:1], 6, axis=0) + rng.normal(
        scale=1e-6, size=(6, 3)
    )
    ref = lloyd(pts, seeds, kernel="dense")
    assert ref.iterations >= 1
    for name in ALT_KERNELS:
        _assert_identical(ref, lloyd(pts, seeds, kernel=name), name)
    _assert_blas_close(ref, pts, seeds, "blas repair")


def test_kernels_bit_identical_duplicate_centroids():
    """Exact distance ties must keep argmin's first-index behaviour."""
    rng = np.random.default_rng(5)
    pts = rng.normal(size=(300, 2))
    seeds = np.vstack([pts[0], pts[0], pts[10], pts[20]])  # duplicated seed
    ref = lloyd(pts, seeds, kernel="dense", max_iter=20)
    for name in ALT_KERNELS:
        _assert_identical(ref, lloyd(pts, seeds, kernel=name, max_iter=20), name)


def test_kernels_bit_identical_through_restarts():
    """best_of_restarts consumes identical RNG streams per kernel."""
    rng_pts = np.random.default_rng(21)
    pts = rng_pts.normal(size=(400, 5))
    ref = best_of_restarts(
        pts, k=8, restarts=4, rng=np.random.default_rng(2), kernel="dense"
    )
    for name in ALT_KERNELS:
        alt = best_of_restarts(
            pts, k=8, restarts=4, rng=np.random.default_rng(2), kernel=name
        )
        assert alt.mses == ref.mses
        assert alt.iteration_counts == ref.iteration_counts
        assert alt.best_index == ref.best_index
        _assert_identical(ref.best, alt.best, name)


def test_kernels_bit_identical_high_k_regime():
    """k >= 40: the regime the elkan group bounds exist for."""
    rng = np.random.default_rng(29)
    pts = rng.normal(size=(2000, 6))
    seeds = pts[rng.choice(2000, size=48, replace=False)]
    ref = lloyd(pts, seeds, kernel="dense", max_iter=30)
    for name in ALT_KERNELS:
        alt = lloyd(pts, seeds, kernel=name, max_iter=30)
        _assert_identical(ref, alt, (name, "k=48"))
    _assert_blas_close(ref, pts, seeds, "blas k=48", max_iter=30)


# ---------------------------------------------------------------------------
# Input dtype / memory-layout coverage (satellite)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "layout", ["float32", "fortran", "strided", "fortran32"]
)
def test_kernels_accept_every_input_layout(layout):
    """float32 / Fortran-ordered / non-contiguous inputs: every kernel.

    ``lloyd`` canonicalises inputs to float64 C-contiguous before the
    kernel sees them, so every kernel must give the same answer for the
    same logical values regardless of the caller's dtype or layout.
    """
    rng = np.random.default_rng(31)
    base = rng.normal(size=(240, 5))
    seeds = base[rng.choice(240, size=9, replace=False)].copy()
    if layout == "float32":
        pts = base.astype(np.float32)
    elif layout == "fortran":
        pts = np.asfortranarray(base)
    elif layout == "strided":
        padded = rng.normal(size=(480, 5))
        padded[::2] = base
        pts = padded[::2]
        assert not pts.flags["C_CONTIGUOUS"]
    else:
        pts = np.asfortranarray(base.astype(np.float32))
    # Reference computed from the canonical float64 copy of the same values.
    canonical = np.ascontiguousarray(pts, dtype=np.float64)
    ref = lloyd(canonical, seeds, kernel="dense", max_iter=25)
    for name in ("dense",) + ALT_KERNELS:
        alt = lloyd(pts, seeds, kernel=name, max_iter=25)
        _assert_identical(ref, alt, (name, layout))
    _assert_blas_close(ref, pts, seeds, ("blas", layout), max_iter=25)


# ---------------------------------------------------------------------------
# Hypothesis property tests (satellite): tier contracts on random shapes
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=8, max_value=160),
    k=st.integers(min_value=1, max_value=12),
    d=st.integers(min_value=1, max_value=10),
)
def test_property_exact_kernels_bit_identical(seed, n, k, d):
    """Any (n, k, d): exact kernels reproduce dense bit for bit."""
    k = min(k, n)
    rng = np.random.default_rng(seed)
    pts = rng.normal(scale=rng.uniform(1e-2, 1e2), size=(n, d))
    seeds = pts[rng.choice(n, size=k, replace=False)]
    ref = lloyd(pts, seeds, kernel="dense", max_iter=15)
    for name in ALT_KERNELS:
        alt = lloyd(pts, seeds, kernel=name, max_iter=15)
        _assert_identical(ref, alt, (name, seed, n, k, d))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=8, max_value=160),
    k=st.integers(min_value=1, max_value=12),
    d=st.integers(min_value=1, max_value=10),
)
def test_property_blas_within_documented_tolerance(seed, n, k, d):
    """Any (n, k, d): the blas tier stays within blas_mse_tolerance."""
    k = min(k, n)
    rng = np.random.default_rng(seed)
    pts = rng.normal(scale=rng.uniform(1e-2, 1e2), size=(n, d))
    seeds = pts[rng.choice(n, size=k, replace=False)]
    ref = lloyd(pts, seeds, kernel="dense", max_iter=15)
    _assert_blas_close(ref, pts, seeds, (seed, n, k, d), max_iter=15)


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------


def test_dense_counters_account_every_evaluation():
    rng = np.random.default_rng(0)
    pts = rng.normal(size=(200, 4))
    seeds = pts[:8]
    result = lloyd(pts, seeds, kernel="dense")
    counters = result.counters
    assert counters is not None and counters.kernel == "dense"
    # One full (n, k) pass per iteration, +1 for repair re-assigns (none
    # here) and +1 for the final post-loop assignment.
    assert counters.assign_calls == result.iterations + 1
    assert counters.distance_evals_computed == counters.assign_calls * 200 * 8
    assert counters.distance_evals_skipped == 0
    assert counters.bound_check_hits == 0


@pytest.mark.parametrize("name", ALT_KERNELS)
def test_bounds_kernels_account_every_evaluation(name):
    rng = np.random.default_rng(1)
    centers = rng.uniform(-50, 50, size=(8, 5))
    pts = np.vstack([c + rng.normal(scale=0.3, size=(250, 5)) for c in centers])
    seeds = pts[rng.choice(pts.shape[0], 8, replace=False)]
    dense = lloyd(pts, seeds, kernel="dense")
    fast = lloyd(pts, seeds, kernel=name)
    assert fast.counters.distance_evals_skipped > 0
    assert fast.counters.bound_check_hits > 0
    # The pruning must translate into strictly less distance work than
    # the dense reference, and the accounting is exact: every evaluation
    # is either computed or provably skipped, never double-counted.
    assert (
        fast.counters.distance_evals_computed
        < dense.counters.distance_evals_computed
    )
    assert (
        fast.counters.distance_evals_computed
        + fast.counters.distance_evals_skipped
        == dense.counters.distance_evals_computed
    )
    assert fast.counters.assign_seconds >= 0.0
    if name == "elkan":
        # One group-bound set maintained per assignment pass.
        assert fast.counters.bound_groups >= fast.counters.assign_calls


def test_blas_counters_record_gemm_and_refines():
    rng = np.random.default_rng(2)
    centers = rng.uniform(-50, 50, size=(10, 4))
    pts = np.vstack([c + rng.normal(scale=0.4, size=(300, 4)) for c in centers])
    seeds = pts[rng.choice(pts.shape[0], 10, replace=False)]
    result = lloyd(pts, seeds, kernel="blas", exact=False)
    counters = result.counters
    assert counters.kernel == "blas"
    assert counters.gemm_calls > 0
    assert counters.refine_rows >= 0
    assert counters.bound_groups > 0
    # Accounting covers the executed passes (the trajectory itself may
    # differ from dense, so compare against this run's own pass count).
    dense_cost = counters.assign_calls * pts.shape[0] * 10
    assert (
        counters.distance_evals_computed + counters.distance_evals_skipped
        == dense_cost
    )


def test_counters_dict_roundtrip_and_merge():
    a = KernelCounters("hamerly", 100, 50, 10, 2, 0.5)
    b = KernelCounters.from_dict(a.as_dict())
    assert b == a
    assert KernelCounters.from_dict(None) is None
    # Unknown keys (future fields) are tolerated.
    payload = a.as_dict()
    payload["novel_field"] = 1
    assert KernelCounters.from_dict(payload) == a
    agg = KernelCounters()
    agg.merge(a)
    agg.merge(a)
    assert agg.distance_evals_computed == 200
    assert agg.kernel == "hamerly"
    merged = merge_counter_dicts({}, a.as_dict())
    merged = merge_counter_dicts(merged, a.as_dict())
    assert merged["distance_evals_computed"] == 200
    assert merged["kernel"] == "hamerly"
    assert merge_counter_dicts({"x": 1}, None) == {"x": 1}


def test_counters_dict_carries_new_fields():
    a = KernelCounters("blas", gemm_calls=7, refine_rows=13, bound_groups=5)
    payload = a.as_dict()
    assert payload["gemm_calls"] == 7
    assert payload["refine_rows"] == 13
    assert payload["bound_groups"] == 5
    roundtrip = KernelCounters.from_dict(payload)
    assert roundtrip == a
    merged = merge_counter_dicts({}, payload)
    merged = merge_counter_dicts(merged, payload)
    assert merged["gemm_calls"] == 14
    assert merged["bound_groups"] == 10


# ---------------------------------------------------------------------------
# Selection: resolve_kernel, the environment knobs, and the exact gate
# ---------------------------------------------------------------------------


def test_available_kernels_lists_all_four():
    assert available_kernels() == ("blas", "dense", "elkan", "hamerly")


def test_resolve_kernel_precedence(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    monkeypatch.delenv(EXACT_ENV_VAR, raising=False)
    assert isinstance(resolve_kernel(None), DenseKernel)
    assert isinstance(resolve_kernel("hamerly"), HamerlyKernel)
    monkeypatch.setenv(KERNEL_ENV_VAR, "elkan")
    assert isinstance(resolve_kernel(None), ElkanKernel)
    # Explicit argument beats the environment.
    assert isinstance(resolve_kernel("dense"), DenseKernel)
    # Instances pass through untouched.
    instance = HamerlyKernel()
    assert resolve_kernel(instance) is instance
    monkeypatch.setenv(KERNEL_ENV_VAR, "")
    assert isinstance(resolve_kernel(None), DenseKernel)


def test_resolve_kernel_rejects_unknown(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    with pytest.raises(ValueError, match="unknown k-means kernel"):
        resolve_kernel("fancy")


def test_resolve_kernel_names_env_var_for_bad_env_value(monkeypatch):
    """A bad REPRO_KMEANS_KERNEL value must be blamed on the env var."""
    monkeypatch.setenv(KERNEL_ENV_VAR, "fancy")
    with pytest.raises(ValueError) as excinfo:
        resolve_kernel(None)
    message = str(excinfo.value)
    assert KERNEL_ENV_VAR in message
    assert "'fancy'" in message
    for name in available_kernels():
        assert name in message


def test_exact_gate_blocks_blas_by_default(monkeypatch):
    monkeypatch.delenv(EXACT_ENV_VAR, raising=False)
    with pytest.raises(ValueError, match="bit-identity"):
        resolve_kernel("blas")
    with pytest.raises(ValueError, match="bit-identity"):
        resolve_kernel(BlasKernel())
    # The explicit waiver admits the tier.
    assert isinstance(resolve_kernel("blas", exact=False), BlasKernel)
    instance = BlasKernel()
    assert resolve_kernel(instance, exact=False) is instance


def test_exact_env_var_waives_and_rejects_garbage(monkeypatch):
    monkeypatch.setenv(EXACT_ENV_VAR, "0")
    assert isinstance(resolve_kernel("blas"), BlasKernel)
    monkeypatch.setenv(EXACT_ENV_VAR, "false")
    assert isinstance(resolve_kernel("blas"), BlasKernel)
    monkeypatch.setenv(EXACT_ENV_VAR, "1")
    with pytest.raises(ValueError, match="bit-identity"):
        resolve_kernel("blas")
    monkeypatch.setenv(EXACT_ENV_VAR, "maybe")
    with pytest.raises(ValueError, match=EXACT_ENV_VAR):
        resolve_kernel("blas")
    # An explicit argument beats the environment.
    monkeypatch.setenv(EXACT_ENV_VAR, "1")
    assert isinstance(resolve_kernel("blas", exact=False), BlasKernel)


def test_tiled_alias_maps_to_blas_with_one_deprecation_warning(monkeypatch):
    """Regression pin for the deprecate-and-alias satellite."""
    monkeypatch.delenv(EXACT_ENV_VAR, raising=False)
    monkeypatch.setattr(kernels_module, "_tiled_alias_warned", False)
    with pytest.warns(DeprecationWarning, match="tiled"):
        kernel = resolve_kernel("tiled", exact=False)
    assert isinstance(kernel, BlasKernel)
    # Warn once per process, not per call.
    with warnings_none():
        again = resolve_kernel("tiled", exact=False)
    assert isinstance(again, BlasKernel)
    # The alias lands on the exact=False tier, so the gate still applies.
    with pytest.raises(ValueError, match="bit-identity"):
        resolve_kernel("tiled")


class warnings_none:
    """Context asserting no warnings are emitted inside the block."""

    def __enter__(self):
        import warnings as _warnings

        self._catcher = _warnings.catch_warnings(record=True)
        self._records = self._catcher.__enter__()
        _warnings.simplefilter("always")
        return self._records

    def __exit__(self, exc_type, exc, tb):
        self._catcher.__exit__(exc_type, exc, tb)
        if exc_type is None:
            assert not self._records, [str(r.message) for r in self._records]
        return False


def test_env_knob_drives_lloyd(monkeypatch):
    rng = np.random.default_rng(4)
    pts = rng.normal(size=(120, 3))
    seeds = pts[:5]
    monkeypatch.setenv(KERNEL_ENV_VAR, "hamerly")
    via_env = lloyd(pts, seeds)
    assert via_env.kernel == "hamerly"
    monkeypatch.delenv(KERNEL_ENV_VAR)
    ref = lloyd(pts, seeds)
    assert ref.kernel == "dense"
    _assert_identical(ref, via_env, "env knob")


# ---------------------------------------------------------------------------
# Aggregation helper
# ---------------------------------------------------------------------------


def test_aggregate_weighted_sums_matches_scatter_add():
    rng = np.random.default_rng(9)
    for n, k, d in [(500, 7, 3), (64, 64, 17), (1000, 2, 1)]:
        weighted = rng.normal(size=(n, d))
        assignments = rng.integers(0, k, size=n)
        expected = np.zeros((k, d))
        np.add.at(expected, assignments, weighted)
        got = aggregate_weighted_sums(weighted, assignments, k)
        assert got.tobytes() == expected.tobytes()


# ---------------------------------------------------------------------------
# Early abandon
# ---------------------------------------------------------------------------


def test_early_abandon_never_changes_the_winner():
    rng = np.random.default_rng(13)
    pts = rng.normal(size=(600, 4))
    ref = best_of_restarts(pts, k=10, restarts=6, rng=np.random.default_rng(5))
    fast = best_of_restarts(
        pts, k=10, restarts=6, rng=np.random.default_rng(5), early_abandon=True
    )
    assert fast.best_index == ref.best_index
    _assert_identical(ref.best, fast.best, "early abandon")
    assert len(fast.mses) == 6
    # Abandoned runs did strictly less work.
    if fast.abandoned_runs:
        assert fast.counters.distance_evals_computed < (
            ref.counters.distance_evals_computed
        )


def test_abandoned_result_is_flagged_and_loses():
    rng = np.random.default_rng(17)
    pts = rng.normal(size=(400, 3))
    # Absurdly low incumbent: any run projecting above it abandons fast.
    result = lloyd(pts, pts[:6], abandon_sse=1e-12, max_iter=100)
    assert result.abandoned
    assert result.sse > 1e-12
    no_abandon = lloyd(pts, pts[:6], max_iter=100)
    assert not no_abandon.abandoned


def test_first_restart_never_abandons():
    rng = np.random.default_rng(19)
    pts = rng.normal(size=(200, 3))
    report = best_of_restarts(
        pts, k=5, restarts=1, rng=rng, early_abandon=True
    )
    assert report.abandoned_runs == 0
    assert not report.best.abandoned


# ---------------------------------------------------------------------------
# Empty-cluster repair regression (satellite: penalty refresh per donor)
# ---------------------------------------------------------------------------


def test_repair_two_empties_pick_distinct_regions():
    """Two simultaneously empty clusters must not take near-duplicate donors.

    Construction: the current assignment leaves the two farthest points as
    near-duplicates at x=100 (distances 10000 and ~10000), with the next
    independent outlier at x=50.  The stale-penalty bug reseeds the second
    empty centroid onto the *twin* of the first donor (its penalty was
    never refreshed against the new centroid); the fixed repair lowers the
    twin's penalty to ~1e-6 and picks the x=50 outlier instead.
    """
    points = np.array(
        [
            [0.0, 0.0],
            [0.0, 0.0],
            [0.0, 0.0],
            [0.0, 0.0],
            [0.0, 0.0],
            [100.0, 0.0],
            [100.0, 1e-3],
            [50.0, 0.0],
        ]
    )
    n = points.shape[0]
    weights = np.ones(n)
    centroids = np.zeros((3, 2))  # clusters 1 and 2 are empty
    assignments = np.zeros(n, dtype=np.intp)
    sq_dists = (points**2).sum(axis=1)
    empty = np.array([1, 2])
    _repair_empty_clusters(
        centroids, points, weights, assignments, sq_dists, empty
    )
    donors = [tuple(centroids[1]), tuple(centroids[2])]
    # Exactly one donor from the x=100 twin pair — the buggy version took
    # both twins and left the x=50 outlier unrepresented.
    twins = sum(1 for donor in donors if donor[0] == 100.0)
    assert twins == 1, donors
    assert (50.0, 0.0) in donors


def test_repair_degenerate_data_leaves_centroids():
    """All points on their centroids: nothing positive to donate."""
    points = np.zeros((4, 2))
    centroids = np.array([[0.0, 0.0], [9.0, 9.0]])
    assignments = np.zeros(4, dtype=np.intp)
    sq_dists = np.zeros(4)
    _repair_empty_clusters(
        centroids, points, np.ones(4), assignments, sq_dists, np.array([1])
    )
    assert centroids[1].tolist() == [9.0, 9.0]


def test_lloyd_repairs_multiple_empty_clusters_distinctly():
    """End-to-end: three tight clumps, all seeds exactly coincident.

    Iteration one assigns every point to cluster 0 (first-index ties), so
    clusters 1 and 2 are simultaneously empty and both get repaired in the
    same call — the regression scenario for the stale-penalty bug.
    """
    rng = np.random.default_rng(23)
    clumps = [
        rng.normal(loc=(0, 0), scale=0.01, size=(50, 2)),
        rng.normal(loc=(100, 0), scale=0.01, size=(2, 2)),
        rng.normal(loc=(0, 100), scale=0.01, size=(2, 2)),
    ]
    pts = np.vstack(clumps)
    seeds = np.repeat(pts[:1], 3, axis=0)
    result = lloyd(pts, seeds)
    # Every clump ends up owning at least one centroid: the repair spread
    # the empty centroids over distinct badly-represented regions.
    assigned_clumps = {
        int(np.argmin([np.abs(c - ctr).sum() for ctr in ((0, 0), (100, 0), (0, 100))]))
        for c in result.centroids
    }
    assert assigned_clumps == {0, 1, 2}
    assert result.sse < 1.0
