"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.kmeans import lloyd
from repro.core.merge import merge_kmeans
from repro.core.model import WeightedCentroidSet
from repro.core.partial import partial_kmeans
from repro.core.pipeline import PartialMergeKMeans, split_into_chunks
from repro.core.quality import assign_to_nearest, mse, sse
from repro.core.seeding import largest_weight_seeds, random_seeds

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def point_arrays(min_rows: int = 2, max_rows: int = 40, max_cols: int = 4):
    """Strategy: small finite float64 point matrices."""
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.integers(1, max_cols).flatmap(
            lambda d: arrays(np.float64, (n, d), elements=finite_floats)
        )
    )


@st.composite
def points_and_k(draw, min_rows=2, max_rows=40, max_cols=4):
    """Strategy: a point matrix and a feasible k."""
    pts = draw(point_arrays(min_rows, max_rows, max_cols))
    k = draw(st.integers(1, pts.shape[0]))
    return pts, k


class TestLloydProperties:
    @given(data=points_and_k())
    @settings(max_examples=40, deadline=None)
    def test_cluster_mass_conserved(self, data):
        pts, k = data
        seeds = random_seeds(pts, k, np.random.default_rng(0))
        result = lloyd(pts, seeds, max_iter=30)
        assert result.cluster_weights.sum() == pytest.approx(pts.shape[0])

    @given(data=points_and_k())
    @settings(max_examples=40, deadline=None)
    def test_mse_nonnegative_and_consistent(self, data):
        pts, k = data
        seeds = random_seeds(pts, k, np.random.default_rng(1))
        result = lloyd(pts, seeds, max_iter=30)
        assert result.mse >= 0.0
        assert result.sse == pytest.approx(result.mse * pts.shape[0], rel=1e-9)

    @given(data=points_and_k())
    @settings(max_examples=30, deadline=None)
    def test_lloyd_never_beats_assignment_lower_bound(self, data):
        """Final MSE equals the MSE of its own centroids (no stale state)."""
        pts, k = data
        seeds = random_seeds(pts, k, np.random.default_rng(2))
        result = lloyd(pts, seeds, max_iter=30)
        assert result.mse == pytest.approx(mse(pts, result.centroids), rel=1e-9)

    @given(data=points_and_k())
    @settings(max_examples=30, deadline=None)
    def test_one_more_lloyd_step_does_not_improve_converged_run(self, data):
        """A converged Lloyd run is a fixed point: re-running from its
        centroids cannot materially reduce the MSE."""
        pts, k = data
        seeds = random_seeds(pts, k, np.random.default_rng(3))
        first = lloyd(pts, seeds, max_iter=200)
        if not first.converged:
            return
        second = lloyd(pts, first.centroids, max_iter=200)
        assert second.mse <= first.mse + 1e-9
        assert first.mse - second.mse <= max(1e-6, 1e-6 * first.mse)

    @given(
        pts=st.integers(3, 30).flatmap(
            lambda n: st.integers(1, 3).flatmap(
                lambda d: arrays(
                    np.float64,
                    (n, d),
                    elements=st.integers(-50, 50).map(float),
                )
            )
        ),
        shift=st.integers(-50, 50).map(float),
    )
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance_of_one_iteration(self, pts, shift):
        """One Lloyd iteration commutes with translation.

        Values are integer-valued floats so distances are exact and the
        translation cannot merge distinct values.  The check is limited
        to a single iteration deliberately: over many iterations,
        ULP-level rounding of centroid means (whose magnitude changes
        with the shift) can flip an exact assignment tie, after which
        the two runs legitimately converge to different local optima.
        Within one iteration the assignment is computed from exact
        integer distances, so the MSE must match tightly.
        """
        k = min(3, pts.shape[0])
        seeds = random_seeds(pts, k, np.random.default_rng(4))
        base = lloyd(pts, seeds, max_iter=1)
        moved = lloyd(pts + shift, seeds + shift, max_iter=1)
        assert moved.mse == pytest.approx(base.mse, abs=1e-6)
        np.testing.assert_allclose(
            moved.centroids, base.centroids + shift, atol=1e-9
        )


class TestSplitMergeProperties:
    @given(
        pts=point_arrays(min_rows=8, max_rows=60, max_cols=3),
        n_chunks=st.integers(2, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_split_is_a_partition(self, pts, n_chunks):
        n_chunks = min(n_chunks, pts.shape[0])
        chunks = split_into_chunks(pts, n_chunks, np.random.default_rng(0))
        stacked = np.vstack(chunks)
        assert stacked.shape == pts.shape
        # Same multiset of rows: compare sorted flattened representations.
        np.testing.assert_allclose(
            np.sort(stacked, axis=0), np.sort(pts, axis=0)
        )

    @given(
        pts=point_arrays(min_rows=10, max_rows=60, max_cols=3),
        n_chunks=st.integers(2, 5),
        k=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_pipeline_conserves_point_mass(self, pts, n_chunks, k):
        n_chunks = min(n_chunks, pts.shape[0])
        report = PartialMergeKMeans(
            k=k, restarts=1, n_chunks=n_chunks, seed=0, max_iter=20
        ).fit(pts)
        assert report.model.weights.sum() == pytest.approx(pts.shape[0])

    @given(
        pts=point_arrays(min_rows=10, max_rows=50, max_cols=3),
        n_chunks=st.integers(2, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_partials_cover_every_point_once(self, pts, n_chunks):
        n_chunks = min(n_chunks, pts.shape[0])
        rng = np.random.default_rng(1)
        chunks = split_into_chunks(pts, n_chunks, rng)
        partials = [
            partial_kmeans(c, k=2, restarts=1, rng=rng, max_iter=20)
            for c in chunks
        ]
        total = sum(p.summary.total_weight for p in partials)
        assert total == pytest.approx(pts.shape[0])

    @given(
        weights=arrays(
            np.float64,
            st.integers(2, 20),
            elements=st.floats(0.1, 1000.0),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_largest_weight_seeds_are_heaviest(self, weights):
        points = np.arange(weights.size, dtype=float).reshape(-1, 1)
        k = max(1, weights.size // 2)
        seeds = largest_weight_seeds(points, k, weights)
        chosen = {int(s) for s in seeds.ravel()}
        threshold = np.sort(weights)[-k]
        # Every non-chosen point must weigh at most every chosen one.
        for index, weight in enumerate(weights):
            if index not in chosen:
                assert weight <= threshold + 1e-12

    @given(
        pts=point_arrays(min_rows=6, max_rows=40, max_cols=3),
        k=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_merge_preserves_center_of_mass(self, pts, k):
        rng = np.random.default_rng(2)
        n_chunks = min(3, pts.shape[0])
        chunks = split_into_chunks(pts, n_chunks, rng)
        partials = [
            partial_kmeans(c, k=2, restarts=1, rng=rng, max_iter=20).summary
            for c in chunks
        ]
        merged = merge_kmeans(partials, k=k, max_iter=20)
        np.testing.assert_allclose(
            merged.model.mean(), pts.mean(axis=0), atol=1e-6
        )


class TestQualityProperties:
    @given(data=points_and_k())
    @settings(max_examples=40, deadline=None)
    def test_sse_monotone_in_centroid_count(self, data):
        """Adding a centroid can only reduce (or keep) the SSE."""
        pts, k = data
        rng = np.random.default_rng(3)
        fewer = random_seeds(pts, k, rng)
        more = np.vstack([fewer, pts[0:1] + 1.0])
        assert sse(pts, more) <= sse(pts, fewer) + 1e-9

    @given(pts=point_arrays())
    @settings(max_examples=40, deadline=None)
    def test_assignment_is_argmin(self, pts):
        centroids = pts[: min(3, pts.shape[0])]
        assignments, sq = assign_to_nearest(pts, centroids)
        d2 = ((pts[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(sq, d2.min(axis=1), rtol=1e-9, atol=1e-9)
        assert (sq <= d2[np.arange(pts.shape[0]), 0] + 1e-12).all()

    @given(
        pts=point_arrays(min_rows=4),
        scale=st.floats(0.1, 10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_mse_scales_quadratically(self, pts, scale):
        centroids = pts[:2]
        base = mse(pts, centroids)
        scaled = mse(pts * scale, centroids * scale)
        assert scaled == pytest.approx(base * scale**2, rel=1e-6, abs=1e-9)
