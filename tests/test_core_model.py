"""Unit tests for repro.core.model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import (
    ClusterModel,
    KMeansResult,
    WeightedCentroidSet,
    as_points,
    as_weights,
)


class TestAsPoints:
    def test_coerces_list_to_float64(self):
        arr = as_points([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.shape == (2, 2)

    def test_promotes_1d_to_column(self):
        arr = as_points([1.0, 2.0, 3.0])
        assert arr.shape == (3, 1)

    def test_is_c_contiguous(self):
        base = np.asfortranarray(np.ones((4, 3)))
        assert as_points(base).flags["C_CONTIGUOUS"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one row"):
            as_points(np.empty((0, 3)))

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            as_points(np.ones((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            as_points([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            as_points([[np.inf, 0.0]])


class TestAsWeights:
    def test_none_gives_unit_weights(self):
        wts = as_weights(None, 5)
        assert wts.shape == (5,)
        assert (wts == 1.0).all()

    def test_accepts_valid_weights(self):
        wts = as_weights([1.0, 2.0, 3.0], 3)
        assert wts.sum() == 6.0

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="shape"):
            as_weights([1.0, 2.0], 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            as_weights([1.0, -0.5], 2)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="positive total"):
            as_weights([0.0, 0.0], 2)

    def test_rejects_nan_weight(self):
        with pytest.raises(ValueError, match="finite"):
            as_weights([1.0, np.nan], 2)

    def test_allows_some_zero_weights(self):
        wts = as_weights([0.0, 2.0], 2)
        assert wts[0] == 0.0


class TestWeightedCentroidSet:
    def test_basic_properties(self):
        wcs = WeightedCentroidSet(
            centroids=np.array([[0.0, 0.0], [1.0, 1.0]]),
            weights=np.array([3.0, 1.0]),
            source="P0",
        )
        assert wcs.k == 2
        assert wcs.dim == 2
        assert wcs.total_weight == 4.0
        assert wcs.source == "P0"

    def test_mean_is_weighted(self):
        wcs = WeightedCentroidSet(
            centroids=np.array([[0.0], [4.0]]), weights=np.array([3.0, 1.0])
        )
        assert wcs.mean() == pytest.approx([1.0])

    def test_weight_count_must_match_centroids(self):
        with pytest.raises(ValueError):
            WeightedCentroidSet(
                centroids=np.ones((3, 2)), weights=np.array([1.0, 2.0])
            )

    def test_concatenate_pools_everything(self):
        a = WeightedCentroidSet(np.ones((2, 3)), np.array([1.0, 2.0]))
        b = WeightedCentroidSet(np.zeros((3, 3)), np.array([1.0, 1.0, 1.0]))
        merged = WeightedCentroidSet.concatenate([a, b])
        assert merged.k == 5
        assert merged.total_weight == 6.0

    def test_concatenate_rejects_empty_list(self):
        with pytest.raises(ValueError, match="empty list"):
            WeightedCentroidSet.concatenate([])

    def test_concatenate_rejects_mixed_dims(self):
        a = WeightedCentroidSet(np.ones((2, 3)), np.ones(2))
        b = WeightedCentroidSet(np.ones((2, 4)), np.ones(2))
        with pytest.raises(ValueError, match="mixed dimensionality"):
            WeightedCentroidSet.concatenate([a, b])

    def test_frozen(self):
        wcs = WeightedCentroidSet(np.ones((1, 2)), np.ones(1))
        with pytest.raises(AttributeError):
            wcs.source = "other"


class TestKMeansResult:
    def _result(self) -> KMeansResult:
        return KMeansResult(
            centroids=np.array([[0.0, 0.0], [5.0, 5.0], [9.0, 9.0]]),
            assignments=np.array([0, 0, 1]),
            cluster_weights=np.array([2.0, 1.0, 0.0]),
            sse=1.5,
            mse=0.5,
            iterations=4,
            converged=True,
        )

    def test_k(self):
        assert self._result().k == 3

    def test_to_weighted_set_drops_empty_clusters(self):
        summary = self._result().to_weighted_set(source="P1")
        assert summary.k == 2
        assert summary.total_weight == 3.0
        assert summary.source == "P1"

    def test_to_weighted_set_keeps_coordinates(self):
        summary = self._result().to_weighted_set()
        np.testing.assert_allclose(
            summary.centroids, [[0.0, 0.0], [5.0, 5.0]]
        )


class TestClusterModel:
    def test_defaults(self):
        model = ClusterModel(
            centroids=np.ones((2, 3)),
            weights=np.ones(2),
            mse=1.0,
            method="test",
        )
        assert model.partitions == 1
        assert model.total_seconds == 0.0
        assert model.extra == {}
        assert model.k == 2
        assert model.dim == 3

    def test_to_weighted_set_carries_method(self):
        model = ClusterModel(
            centroids=np.ones((2, 3)),
            weights=np.array([2.0, 4.0]),
            mse=1.0,
            method="serial",
        )
        summary = model.to_weighted_set()
        assert summary.source == "serial"
        assert summary.total_weight == 6.0

    def test_validates_weights(self):
        with pytest.raises(ValueError):
            ClusterModel(
                centroids=np.ones((2, 3)),
                weights=np.array([1.0]),
                mse=0.0,
                method="bad",
            )
