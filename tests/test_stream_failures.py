"""Failure-injection tests: every operator role, every failure point."""

from __future__ import annotations

import time

import pytest

from repro.stream.errors import ExecutionError
from repro.stream.executor import Executor
from repro.stream.graph import DataflowGraph
from repro.stream.operators import FunctionTransform, Sink, Source, Transform
from repro.stream.planner import Planner
from repro.stream.scheduler import ResourceManager


class RangeSource(Source):
    def __init__(self, n: int, name: str = "src", fail_at: int | None = None):
        super().__init__(name)
        self.n = n
        self.fail_at = fail_at

    def generate(self):
        for value in range(self.n):
            if self.fail_at is not None and value == self.fail_at:
                raise IOError("disk error mid-scan")
            yield value


class CollectSink(Sink):
    def __init__(
        self,
        name: str = "sink",
        fail_on_consume: bool = False,
        fail_on_result: bool = False,
    ):
        super().__init__(name)
        self.items = []
        self.fail_on_consume = fail_on_consume
        self.fail_on_result = fail_on_result

    def consume(self, item):
        if self.fail_on_consume:
            raise RuntimeError("sink rejected an item")
        self.items.append(item)

    def result(self):
        if self.fail_on_result:
            raise RuntimeError("result assembly failed")
        return self.items


class FailOnFinishTransform(Transform):
    parallelizable = False

    def __init__(self, name: str = "flaky"):
        super().__init__(name)

    def process(self, item):
        return [item]

    def finish(self):
        raise RuntimeError("flush failed")


def build(source, transform, sink) -> DataflowGraph:
    graph = DataflowGraph()
    graph.add(source)
    graph.add(transform)
    graph.add(sink)
    graph.connect(source.name, transform.name)
    graph.connect(transform.name, sink.name)
    return graph


def run(graph):
    plan = Planner(ResourceManager(worker_slots=3)).plan(graph)
    return Executor().run(plan)


class TestFailureInjection:
    def test_source_failure_mid_stream(self):
        graph = build(
            RangeSource(100, fail_at=10),
            FunctionTransform("id", lambda i: [i]),
            CollectSink(),
        )
        with pytest.raises(ExecutionError) as excinfo:
            run(graph)
        assert any("src" in f.operator_name for f in excinfo.value.failures)

    def test_sink_consume_failure(self):
        graph = build(
            RangeSource(20),
            FunctionTransform("id", lambda i: [i]),
            CollectSink(fail_on_consume=True),
        )
        with pytest.raises(ExecutionError) as excinfo:
            run(graph)
        assert any("sink" in f.operator_name for f in excinfo.value.failures)

    def test_sink_result_failure(self):
        graph = build(
            RangeSource(5),
            FunctionTransform("id", lambda i: [i]),
            CollectSink(fail_on_result=True),
        )
        with pytest.raises(ExecutionError) as excinfo:
            run(graph)
        assert any("sink" in f.operator_name for f in excinfo.value.failures)

    def test_transform_finish_failure(self):
        graph = build(
            RangeSource(5),
            FailOnFinishTransform(),
            CollectSink(),
        )
        with pytest.raises(ExecutionError) as excinfo:
            run(graph)
        assert any("flaky" in f.operator_name for f in excinfo.value.failures)

    def test_failure_cause_preserved(self):
        graph = build(
            RangeSource(100, fail_at=0),
            FunctionTransform("id", lambda i: [i]),
            CollectSink(),
        )
        with pytest.raises(ExecutionError) as excinfo:
            run(graph)
        failure = excinfo.value.failures[0]
        assert isinstance(failure.__cause__, IOError)
        assert "disk error" in str(failure.__cause__)

    def test_all_failures_terminate_quickly(self):
        """No failure mode may leave the executor hanging on a queue."""
        scenarios = [
            build(RangeSource(10_000, fail_at=5),
                  FunctionTransform("id", lambda i: [i]), CollectSink()),
            build(RangeSource(10_000),
                  FunctionTransform("id", lambda i: [i]),
                  CollectSink(fail_on_consume=True)),
        ]
        for graph in scenarios:
            started = time.perf_counter()
            with pytest.raises(ExecutionError):
                run(graph)
            assert time.perf_counter() - started < 10.0


class FlakyTransform(Transform):
    """Fails the first ``failures_per_item`` attempts on each item."""

    max_retries = 3

    def __init__(self, failures_per_item: int, name: str = "flaky-net"):
        super().__init__(name)
        self.failures_per_item = failures_per_item
        self.attempts: dict[int, int] = {}

    def process(self, item):
        seen = self.attempts.get(item, 0)
        self.attempts[item] = seen + 1
        if seen < self.failures_per_item:
            raise ConnectionError("transient")
        return [item]


class TestRetries:
    def test_transient_failures_retried(self):
        graph = build(RangeSource(10), FlakyTransform(2), CollectSink())
        outcome = run(graph)
        assert outcome.value == list(range(10))

    def test_retries_counted_in_operator_metrics(self):
        graph = build(RangeSource(10), FlakyTransform(2), CollectSink())
        outcome = run(graph)
        op = next(
            m for m in outcome.metrics.operators if m.name == "flaky-net"
        )
        # Two failed attempts per item before success, over ten items.
        assert op.retries == 20
        assert outcome.metrics.total_retries == 20
        clean = next(m for m in outcome.metrics.operators if m.name == "src")
        assert clean.retries == 0

    def test_exhausted_retries_fail_plan(self):
        graph = build(RangeSource(5), FlakyTransform(10), CollectSink())
        with pytest.raises(ExecutionError) as excinfo:
            run(graph)
        assert isinstance(excinfo.value.failures[0].__cause__, ConnectionError)

    def test_non_retryable_error_fails_fast(self):
        class Picky(FlakyTransform):
            retryable_errors = (TimeoutError,)

        picky = Picky(1)
        graph = build(RangeSource(5), picky, CollectSink())
        with pytest.raises(ExecutionError):
            run(graph)
        # Only one attempt per item processed before the failure.
        assert max(picky.attempts.values()) == 1

    def test_default_transform_fails_fast(self):
        class OneShot(Transform):
            def __init__(self):
                super().__init__("oneshot")
                self.calls = 0

            def process(self, item):
                self.calls += 1
                raise RuntimeError("permanent")

        operator = OneShot()
        graph = build(RangeSource(5), operator, CollectSink())
        with pytest.raises(ExecutionError):
            run(graph)
        assert operator.calls == 1
