"""Unit tests for the binary grid-bucket file format."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import (
    GridBucketFormatError,
    read_bucket_file,
    read_bucket_header,
    scan_bucket_dir,
    stream_bucket_points,
    write_bucket_dir,
    write_bucket_file,
)


@pytest.fixture
def cell(rng) -> GridCell:
    return GridCell(
        cell_id=GridCellId(lat=34, lon=-118),
        points=rng.normal(size=(123, 6)),
    )


class TestRoundTrip:
    def test_write_read_identical(self, tmp_path, cell):
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        loaded = read_bucket_file(path)
        assert loaded.cell_id == cell.cell_id
        np.testing.assert_array_equal(loaded.points, cell.points)

    def test_header_only_read(self, tmp_path, cell):
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        cell_id, n_points, dim = read_bucket_header(path)
        assert cell_id == cell.cell_id
        assert (n_points, dim) == (123, 6)

    def test_negative_coordinates_roundtrip(self, tmp_path, rng):
        cell = GridCell(GridCellId(lat=-89, lon=-180), rng.normal(size=(5, 2)))
        loaded = read_bucket_file(write_bucket_file(tmp_path / "s.gbk", cell))
        assert loaded.cell_id == cell.cell_id


class TestStreaming:
    def test_chunks_reassemble_exactly(self, tmp_path, cell):
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        chunks = list(stream_bucket_points(path, chunk_points=50))
        assert [c.shape[0] for c in chunks] == [50, 50, 23]
        np.testing.assert_array_equal(np.vstack(chunks), cell.points)

    def test_chunk_larger_than_file(self, tmp_path, cell):
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        chunks = list(stream_bucket_points(path, chunk_points=10_000))
        assert len(chunks) == 1

    def test_rejects_zero_chunk(self, tmp_path, cell):
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        with pytest.raises(ValueError, match="chunk_points"):
            list(stream_bucket_points(path, chunk_points=0))

    def test_streamed_chunks_are_writable_copies(self, tmp_path, cell):
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        chunk = next(stream_bucket_points(path, chunk_points=10))
        chunk[:] = 0.0  # must not raise (frombuffer views are read-only)


class TestCorruptionDetection:
    def test_bad_magic(self, tmp_path, cell):
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        raw = bytearray(path.read_bytes())
        raw[0:4] = b"XXXX"
        path.write_bytes(bytes(raw))
        with pytest.raises(GridBucketFormatError, match="magic"):
            read_bucket_file(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.gbk"
        path.write_bytes(b"GBK1\x00\x00")
        with pytest.raises(GridBucketFormatError, match="truncated header"):
            read_bucket_header(path)

    def test_truncated_payload(self, tmp_path, cell):
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        raw = path.read_bytes()
        path.write_bytes(raw[:-16])
        with pytest.raises(GridBucketFormatError, match="payload"):
            read_bucket_file(path)

    def test_flipped_payload_bit_fails_checksum(self, tmp_path, cell):
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(GridBucketFormatError, match="checksum"):
            read_bucket_file(path)

    def test_streaming_also_checks_checksum(self, tmp_path, cell):
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(GridBucketFormatError, match="checksum"):
            list(stream_bucket_points(path, chunk_points=30))

    def test_empty_bucket_header_rejected(self, tmp_path):
        header = struct.Struct("<4siiQII").pack(b"GBK1", 0, 0, 0, 6, 0)
        path = tmp_path / "empty.gbk"
        path.write_bytes(header)
        with pytest.raises(GridBucketFormatError, match="empty bucket"):
            read_bucket_header(path)

    def test_truncation_detected_at_header_read(self, tmp_path, cell):
        """Header-time size validation: the planner never schedules work
        against a bucket whose payload cannot match its header."""
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        raw = path.read_bytes()
        path.write_bytes(raw[:-16])
        with pytest.raises(GridBucketFormatError, match="truncated payload"):
            read_bucket_header(path)

    def test_trailing_garbage_detected_at_header_read(self, tmp_path, cell):
        path = write_bucket_file(tmp_path / "cell.gbk", cell)
        with open(path, "ab") as handle:
            handle.write(b"extra bytes after the declared payload")
        with pytest.raises(GridBucketFormatError, match="trailing garbage"):
            read_bucket_header(path)


class TestDirectoryScan:
    def test_write_and_scan_dir(self, tmp_path, rng):
        cells = [
            GridCell(GridCellId(lat, 10), rng.normal(size=(20, 3)))
            for lat in (1, 2, 3)
        ]
        paths = write_bucket_dir(tmp_path / "buckets", cells)
        assert len(paths) == 3
        loaded = list(scan_bucket_dir(tmp_path / "buckets"))
        assert {c.cell_id for c in loaded} == {c.cell_id for c in cells}

    def test_scan_skips_non_gbk_files(self, tmp_path, rng):
        target = tmp_path / "buckets"
        write_bucket_dir(
            target, [GridCell(GridCellId(0, 0), rng.normal(size=(5, 2)))]
        )
        (target / "notes.txt").write_text("not a bucket")
        assert len(list(scan_bucket_dir(target))) == 1

    def test_scan_empty_dir(self, tmp_path):
        (tmp_path / "empty").mkdir()
        assert list(scan_bucket_dir(tmp_path / "empty")) == []
