"""Grand integration test: the complete production pipeline.

Satellite → quality screen → granule files → one-pass binning → bucket
files → declarative query on the stream engine → per-cell compression →
global summary → serialized products.  Every subsystem in one flow, with
the invariants that matter checked at each boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import (
    GlobalSummary,
    MultivariateHistogram,
    read_summary_dir,
    write_summary_dir,
)
from repro.core.checks import validate_model
from repro.data import (
    QualityLedger,
    SwathSimulator,
    bin_stripes_into_buckets,
    read_swath_stripes,
    scrub_stripes,
    write_bucket_dir,
    write_granules,
)
from repro.data.gridcell import GridCellId
from repro.stream import Query, ResourceManager


@pytest.mark.parametrize("seed", [3])
def test_full_production_pipeline(tmp_path, seed):
    rng = np.random.default_rng(seed)

    # 1. Acquire: fly the satellite; inject sensor junk into one stripe.
    simulator = SwathSimulator(
        footprints_per_orbit=150, samples_per_footprint=100, seed=seed
    )
    stripes = list(simulator.fly(2))
    stripes[0].measurements[5:9] = np.nan  # a saturated detector burst

    # 2. Screen: the junk must be dropped and accounted for.
    ledger = QualityLedger()
    clean_stripes = list(scrub_stripes(stripes, ledger=ledger))
    assert ledger.dropped == 4
    assert ledger.samples_out == ledger.samples_in - 4

    # 3. Persist the acquisition as semi-structured granules and re-scan.
    write_granules(tmp_path / "granules", clean_stripes, stripes_per_granule=1)
    rescanned = [
        stripe
        for path in sorted((tmp_path / "granules").glob("*.swf"))
        for stripe in read_swath_stripes(path)
    ]
    assert sum(s.measurements.shape[0] for s in rescanned) == ledger.samples_out

    # 4. Bin into grid buckets; keep the populated cells.
    buckets = bin_stripes_into_buckets(iter(rescanned))
    total_binned = sum(b.n_points for b in buckets.values())
    assert total_binned == ledger.samples_out
    densest = sorted(buckets.values(), key=lambda b: -b.n_points)[:4]
    populated = [
        bucket.freeze(rng) for bucket in densest if bucket.n_points >= 80
    ]
    assert populated, "need at least one populated cell"
    write_bucket_dir(tmp_path / "buckets", populated)

    # 5. Cluster everything with a declarative query under a memory budget.
    resources = ResourceManager(memory_budget_bytes=64 * 1024, worker_slots=3)
    result = (
        Query.scan_buckets(str(tmp_path / "buckets"))
        .partition_by_memory()
        .cluster(k=8, restarts=2, max_iter=60)
        .merge()
        .with_resources(resources)
        .with_seed(0)
        .execute()
    )
    assert len(result.models) == len(populated)

    # 6. Per-cell invariants + compression into the global summary.
    summary = GlobalSummary(dim=6)
    points_by_key = {c.cell_id.key: c.points for c in populated}
    for key, model in result.models.items():
        raw = points_by_key[key]
        validate_model(model, points=raw, expected_mass=raw.shape[0])
        summary.add_cell(
            GridCellId.from_key(key),
            MultivariateHistogram.from_model(raw, model),
        )
    assert summary.total_count() == pytest.approx(
        sum(p.shape[0] for p in points_by_key.values())
    )

    # 7. The decoded summary preserves the global mean exactly.
    raw_all = np.vstack(list(points_by_key.values()))
    np.testing.assert_allclose(summary.mean(), raw_all.mean(axis=0), rtol=1e-9)

    # 8. Ship the products and read them back.
    write_summary_dir(tmp_path / "mvh", summary)
    loaded = read_summary_dir(tmp_path / "mvh", dim=6)
    assert len(loaded) == len(summary)
    np.testing.assert_allclose(loaded.mean(), summary.mean())
    assert loaded.compression_ratio() > 1.0
