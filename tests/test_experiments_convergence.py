"""Unit tests for the convergence study and cost model."""

from __future__ import annotations

import pytest

from repro.experiments.convergence_study import (
    partial_merge_distance_ops,
    render_convergence_study,
    run_convergence_study,
    serial_distance_ops,
)


class TestCostModel:
    def test_serial_cost_linear_in_each_factor(self):
        base = serial_distance_ops(1_000, 40, 10.0, 3)
        assert serial_distance_ops(2_000, 40, 10.0, 3) == base * 2
        assert serial_distance_ops(1_000, 80, 10.0, 3) == base * 2
        assert serial_distance_ops(1_000, 40, 20.0, 3) == base * 2
        assert serial_distance_ops(1_000, 40, 10.0, 6) == base * 2

    def test_partial_cost_includes_merge_term(self):
        without = partial_merge_distance_ops(1_000, 40, 5.0, 3, 10)
        with_merge = partial_merge_distance_ops(
            1_000, 40, 5.0, 3, 10, merge_iterations=10.0
        )
        assert with_merge == without + 10.0 * 40 * 400

    def test_fewer_iterations_means_cheaper(self):
        expensive = partial_merge_distance_ops(1_000, 40, 10.0, 3, 10)
        cheap = partial_merge_distance_ops(1_000, 40, 2.0, 3, 10)
        assert cheap < expensive


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_convergence_study(
            sizes=(200, 800), k=10, restarts=2, n_chunks=4, seed=0,
            max_iter=100,
        )

    def test_point_per_size(self, study):
        assert [p.n_points for p in study] == [200, 800]

    def test_iterations_positive(self, study):
        for point in study:
            assert point.serial_iterations >= 1
            assert point.partial_iterations >= 1

    def test_partial_iterations_in_same_class(self, study):
        """At toy scale the I' << I effect is noise-level; chunks must
        simply not need dramatically more iterations than the whole cell
        (the at-scale ordering is asserted by the convergence benchmark)."""
        largest = study[-1]
        assert largest.partial_iterations <= largest.serial_iterations * 1.5

    def test_render(self, study):
        text = render_convergence_study(study, k=10, restarts=2)
        assert "Convergence study" in text
        assert "200" in text

    def test_size_below_k_rejected(self):
        with pytest.raises(ValueError, match=">= k"):
            run_convergence_study(sizes=(5,), k=10)


class TestKSensitivity:
    def test_sweep_structure(self):
        from repro.experiments.sensitivity import run_k_sensitivity

        points = run_k_sensitivity(
            ks=(4, 8), n_points=400, restarts=1, n_chunks=4,
            seed=0, max_iter=30,
        )
        assert [p.k for p in points] == [4, 8]
        for point in points:
            assert point.serial_mse > 0
            assert point.split_mse > 0
            assert point.time_ratio > 0
            assert point.quality_ratio > 0

    def test_more_clusters_less_error(self):
        from repro.experiments.sensitivity import run_k_sensitivity

        points = run_k_sensitivity(
            ks=(2, 16), n_points=600, restarts=2, n_chunks=3,
            seed=1, max_iter=50,
        )
        assert points[1].serial_mse < points[0].serial_mse
        assert points[1].split_mse < points[0].split_mse

    def test_render(self):
        from repro.experiments.sensitivity import (
            render_k_sensitivity,
            run_k_sensitivity,
        )

        points = run_k_sensitivity(
            ks=(4,), n_points=200, restarts=1, n_chunks=2,
            seed=0, max_iter=20,
        )
        assert "k-sensitivity" in render_k_sensitivity(points)

    def test_validation(self):
        from repro.experiments.sensitivity import run_k_sensitivity

        import pytest as _pytest
        with _pytest.raises(ValueError, match="k values"):
            run_k_sensitivity(ks=(0,))
        with _pytest.raises(ValueError, match="exceed"):
            run_k_sensitivity(ks=(500,), n_points=100)


class TestNoiseStudy:
    def test_sweep_structure(self):
        from repro.experiments.noise_study import run_noise_study

        points = run_noise_study(
            epsilons=(0.0, 0.02), n_points=600, k=8, restarts=1,
            n_chunks=3, seed=0, max_iter=30,
        )
        assert [p.epsilon for p in points] == [0.0, 0.02]
        for point in points:
            assert point.serial_mse > 0
            assert point.split_mse > 0
            assert point.robust_mse > 0
            assert 0.0 <= point.tail_captured <= 1.0

    def test_zero_contamination_tail_is_full(self):
        from repro.experiments.noise_study import run_noise_study

        (point,) = run_noise_study(
            epsilons=(0.0,), n_points=400, k=6, restarts=1,
            n_chunks=2, seed=1, max_iter=30,
        )
        assert point.tail_captured == 1.0

    def test_render(self):
        from repro.experiments.noise_study import (
            render_noise_study,
            run_noise_study,
        )

        points = run_noise_study(
            epsilons=(0.0,), n_points=300, k=5, restarts=1,
            n_chunks=2, seed=0, max_iter=20,
        )
        assert "Noise study" in render_noise_study(points)

    def test_validation(self):
        from repro.experiments.noise_study import run_noise_study

        import pytest as _pytest
        with _pytest.raises(ValueError, match="epsilons"):
            run_noise_study(epsilons=(1.5,))
