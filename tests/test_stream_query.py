"""Tests for the declarative query builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator import generate_cell_points
from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import write_bucket_dir
from repro.stream.query import Query, QueryError
from repro.stream.scheduler import ResourceManager


@pytest.fixture
def cells(blobs_6d) -> dict[str, np.ndarray]:
    return {"a": blobs_6d, "b": blobs_6d[:300] + 1.0}


class TestValidation:
    def test_missing_cluster_stage(self, cells):
        with pytest.raises(QueryError, match="no cluster stage"):
            Query.scan_cells(cells).partition(4).execute()

    def test_missing_partitioning(self, cells):
        with pytest.raises(QueryError, match="no partitioning"):
            Query.scan_cells(cells).cluster(k=4).execute()

    def test_duplicate_stage_rejected(self, cells):
        with pytest.raises(QueryError, match="twice"):
            Query.scan_cells(cells).partition(4).partition(5)
        with pytest.raises(QueryError, match="twice"):
            Query.scan_cells(cells).cluster(k=4).cluster(k=5)
        with pytest.raises(QueryError, match="twice"):
            Query.scan_cells(cells).merge(k=4).merge(k=5)

    def test_empty_cells_rejected(self):
        with pytest.raises(QueryError, match="non-empty"):
            Query.scan_cells({})

    def test_bad_parameters(self, cells):
        with pytest.raises(QueryError, match="n_chunks"):
            Query.scan_cells(cells).partition(0)
        with pytest.raises(QueryError, match="k must be"):
            Query.scan_cells(cells).cluster(k=0)
        with pytest.raises(QueryError, match="clones"):
            Query.scan_cells(cells).with_partial_clones(0)


class TestExecution:
    def test_in_memory_query(self, cells):
        result = (
            Query.scan_cells(cells)
            .partition(3)
            .cluster(k=5, restarts=2, max_iter=50)
            .merge()
            .with_seed(0)
            .execute()
        )
        assert set(result.models) == {"a", "b"}
        for cell_id, model in result.models.items():
            assert model.weights.sum() == pytest.approx(
                cells[cell_id].shape[0]
            )
        assert result.execution.metrics.wall_seconds > 0

    def test_merge_defaults_to_cluster_k(self, cells):
        result = (
            Query.scan_cells(cells)
            .partition(3)
            .cluster(k=5, restarts=1, max_iter=30)
            .with_seed(0)
            .execute()
        )
        assert all(m.k <= 5 for m in result.models.values())

    def test_memory_partitioning(self, cells):
        resources = ResourceManager(
            memory_budget_bytes=32 * 1024, worker_slots=2
        )
        result = (
            Query.scan_cells(cells)
            .partition_by_memory()
            .cluster(k=5, restarts=1, max_iter=30)
            .with_resources(resources)
            .with_seed(0)
            .execute()
        )
        cap = resources.max_points_per_partition(6)
        expected = resources.partitions_for(cells["a"].shape[0], 6)
        assert result.models["a"].partitions == expected
        assert cap * expected >= cells["a"].shape[0]

    def test_bucket_query(self, tmp_path):
        cell = GridCell(GridCellId(5, 6), generate_cell_points(600, seed=1))
        write_bucket_dir(tmp_path, [cell])
        result = (
            Query.scan_buckets(str(tmp_path))
            .partition(3)
            .cluster(k=6, restarts=2, max_iter=50)
            .with_seed(0)
            .execute()
        )
        model = result.models[cell.cell_id.key]
        assert model.weights.sum() == pytest.approx(600)

    def test_clone_override_changes_plan(self, cells):
        result = (
            Query.scan_cells(cells)
            .partition(4)
            .cluster(k=5, restarts=1, max_iter=30)
            .with_partial_clones(3)
            .with_seed(0)
            .execute()
        )
        partial_ops = [
            op
            for op in result.execution.metrics.operators
            if op.name.startswith("partial")
        ]
        assert len(partial_ops) == 3


class TestExplain:
    def test_explain_prints_plan_without_running(self, cells):
        lines: list[str] = []
        query = (
            Query.scan_cells(cells)
            .partition(4)
            .cluster(k=5, restarts=2)
            .merge(k=5)
            .explain(printer=lines.append)
        )
        text = "\n".join(lines)
        assert "logical plan" in text
        assert "partial_kmeans(k=5, restarts=2, kernel=dense)" in text
        assert "physical plan" in text
        # explain returns the query for chaining
        assert isinstance(query, Query)

    def test_explain_requires_valid_query(self, cells):
        with pytest.raises(QueryError):
            Query.scan_cells(cells).explain(printer=lambda s: None)
