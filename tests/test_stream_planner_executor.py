"""Tests for the planner and executor working together."""

from __future__ import annotations

import threading
import time

import pytest

from repro.stream.errors import ExecutionError
from repro.stream.executor import Executor
from repro.stream.graph import DataflowGraph
from repro.stream.operators import FunctionTransform, Sink, Source, Transform
from repro.stream.planner import Planner
from repro.stream.scheduler import ResourceManager


class RangeSource(Source):
    def __init__(self, n: int, name: str = "src"):
        super().__init__(name)
        self.n = n

    def generate(self):
        yield from range(self.n)


class CollectSink(Sink):
    def __init__(self, name: str = "sink"):
        super().__init__(name)
        self.items = []

    def consume(self, item):
        self.items.append(item)

    def result(self):
        return sorted(self.items)


class ExplodingTransform(Transform):
    def __init__(self, name: str = "boom"):
        super().__init__(name)

    def process(self, item):
        raise RuntimeError("deliberate failure")


class StatefulBuffering(Transform):
    """Buffers everything, emits at finish — exercises the flush path."""

    parallelizable = False

    def __init__(self, name: str = "buffer"):
        super().__init__(name)
        self._held = []

    def process(self, item):
        self._held.append(item)
        return ()

    def finish(self):
        return [sum(self._held)]


def linear_graph(n: int = 20, fn=None):
    graph = DataflowGraph()
    graph.add(RangeSource(n))
    graph.add(FunctionTransform("double", fn or (lambda item: [item * 2])))
    graph.add(CollectSink())
    graph.connect("src", "double")
    graph.connect("double", "sink")
    return graph


class TestPlanner:
    def test_singletons_for_source_and_sink(self):
        plan = Planner(ResourceManager(worker_slots=8)).plan(linear_graph())
        assert plan.clone_counts["src"] == 1
        assert plan.clone_counts["sink"] == 1

    def test_clones_awarded_to_transform(self):
        plan = Planner(ResourceManager(worker_slots=8)).plan(linear_graph())
        assert plan.clone_counts["double"] == 6  # 8 slots - src - sink

    def test_clone_override_respected(self):
        plan = Planner(ResourceManager(worker_slots=8)).plan(
            linear_graph(), clone_overrides={"double": 3}
        )
        assert plan.clone_counts["double"] == 3

    def test_override_on_singleton_clamped(self):
        graph = linear_graph()
        plan = Planner(ResourceManager(worker_slots=8)).plan(
            graph, clone_overrides={"sink": 5}
        )
        assert plan.clone_counts["sink"] == 1

    def test_cost_hints_bias_clone_split(self):
        graph = DataflowGraph()
        graph.add(RangeSource(5))
        graph.add(FunctionTransform("cheap", lambda i: [i]), cost_hint=1.0)
        graph.add(FunctionTransform("dear", lambda i: [i]), cost_hint=10.0)
        graph.add(CollectSink())
        graph.connect("src", "cheap")
        graph.connect("cheap", "dear")
        graph.connect("dear", "sink")
        plan = Planner(ResourceManager(worker_slots=12)).plan(graph)
        assert plan.clone_counts["dear"] > plan.clone_counts["cheap"]

    def test_minimum_one_instance_each(self):
        plan = Planner(ResourceManager(worker_slots=1)).plan(linear_graph())
        assert all(count >= 1 for count in plan.clone_counts.values())

    def test_describe_mentions_operators(self):
        plan = Planner(ResourceManager(worker_slots=4)).plan(linear_graph())
        text = plan.describe()
        for name in ("src", "double", "sink"):
            assert name in text

    def test_physical_names_unique(self):
        plan = Planner(ResourceManager(worker_slots=8)).plan(linear_graph())
        names = [op.name for op in plan.operators]
        assert len(names) == len(set(names))


class TestExecutor:
    def test_linear_pipeline_result(self):
        plan = Planner(ResourceManager(worker_slots=4)).plan(linear_graph(20))
        outcome = Executor().run(plan)
        assert outcome.value == [i * 2 for i in range(20)]

    def test_empty_plan_is_a_usage_error(self):
        """No operators is a structural mistake, not an execution failure."""
        from repro.stream.planner import PhysicalPlan

        with pytest.raises(ValueError, match="plan has no operators"):
            Executor().run(PhysicalPlan())

    def test_plan_backend_flows_into_metrics(self):
        plan = Planner(ResourceManager(worker_slots=2)).plan(
            linear_graph(5), backend="threads"
        )
        assert plan.backend == "threads"
        outcome = Executor().run(plan)
        assert outcome.metrics.backend == "threads"

    def test_planner_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            Planner().plan(linear_graph(5), backend="gpu")

    def test_result_independent_of_clone_count(self):
        for slots in (1, 3, 8):
            plan = Planner(ResourceManager(worker_slots=slots)).plan(
                linear_graph(30)
            )
            outcome = Executor().run(plan)
            assert outcome.value == [i * 2 for i in range(30)]

    def test_metrics_populated(self):
        plan = Planner(ResourceManager(worker_slots=2)).plan(linear_graph(10))
        outcome = Executor().run(plan)
        metrics = outcome.metrics
        assert metrics.wall_seconds > 0.0
        total_out = sum(
            op.items_out for op in metrics.operators if op.name.startswith("double")
        )
        assert total_out == 10
        assert "q->double" in metrics.queues
        assert metrics.queues["q->sink"].puts == 10

    def test_operator_failure_surfaces(self):
        graph = DataflowGraph()
        graph.add(RangeSource(5))
        graph.add(ExplodingTransform())
        graph.add(CollectSink())
        graph.connect("src", "boom")
        graph.connect("boom", "sink")
        plan = Planner(ResourceManager(worker_slots=2)).plan(graph)
        with pytest.raises(ExecutionError) as excinfo:
            Executor().run(plan)
        assert any("boom" in f.operator_name for f in excinfo.value.failures)

    def test_failure_does_not_hang_other_operators(self):
        graph = DataflowGraph()
        graph.add(RangeSource(10_000))
        graph.add(ExplodingTransform())
        graph.add(CollectSink())
        graph.connect("src", "boom")
        graph.connect("boom", "sink")
        plan = Planner(ResourceManager(worker_slots=2)).plan(graph)
        started = time.perf_counter()
        with pytest.raises(ExecutionError):
            Executor().run(plan)
        assert time.perf_counter() - started < 10.0

    def test_transform_finish_flush(self):
        graph = DataflowGraph()
        graph.add(RangeSource(10))
        graph.add(StatefulBuffering())
        graph.add(CollectSink())
        graph.connect("src", "buffer")
        graph.connect("buffer", "sink")
        plan = Planner(ResourceManager(worker_slots=4)).plan(graph)
        outcome = Executor().run(plan)
        assert outcome.value == [sum(range(10))]

    def test_fan_in_merges_streams(self):
        graph = DataflowGraph()
        graph.add(RangeSource(5, name="a"))
        graph.add(RangeSource(5, name="b"))
        graph.add(CollectSink())
        graph.connect("a", "sink")
        graph.connect("b", "sink")
        plan = Planner(ResourceManager(worker_slots=4)).plan(graph)
        outcome = Executor().run(plan)
        assert outcome.value == sorted(list(range(5)) * 2)

    def test_empty_source(self):
        plan = Planner(ResourceManager(worker_slots=2)).plan(linear_graph(0))
        outcome = Executor().run(plan)
        assert outcome.value == []

    def test_executes_on_worker_threads(self):
        seen_threads = set()

        def record(item):
            seen_threads.add(threading.current_thread().name)
            return [item]

        plan = Planner(ResourceManager(worker_slots=4)).plan(
            linear_graph(20, fn=record)
        )
        Executor().run(plan)
        assert all(name.startswith("stream-") for name in seen_threads)
