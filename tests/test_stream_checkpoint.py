"""Tests for the durable run journal (writer, reader, recovery)."""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np
import pytest

from repro.core.model import ClusterModel, WeightedCentroidSet
from repro.data.generator import generate_cell_points
from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import write_bucket_dir
from repro.stream.checkpoint import (
    JOURNAL_FILENAME,
    JournalFormatError,
    JournalWriter,
    ManifestMismatchError,
    RecoveryManager,
    bucket_inventory,
    read_journal,
)
from repro.stream.items import CentroidMessage


def make_message(cell="lat10lon20", partition=0, n_partitions=3, seed=0):
    rng = np.random.default_rng(seed)
    return CentroidMessage(
        cell_id=cell,
        partition=partition,
        summary=WeightedCentroidSet(
            centroids=rng.normal(size=(4, 6)),
            weights=rng.uniform(1.0, 9.0, size=4),
            source=f"{cell}/P{partition}",
        ),
        n_partitions=n_partitions,
        partial_seconds=0.25,
        partial_iterations=7,
    )


def make_model(seed=1):
    rng = np.random.default_rng(seed)
    return ClusterModel(
        centroids=rng.normal(size=(4, 6)),
        weights=rng.uniform(1.0, 9.0, size=4),
        mse=12.5,
        method="partial/merge[stream]",
        partitions=3,
        extra={"merge_iterations": 4},
    )


class TestJournalRoundTrip:
    def test_records_survive_bit_exact(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        message = make_message()
        model = make_model()
        with JournalWriter(path, fsync=False) as writer:
            writer.append_manifest({"k": 8, "seed": 42})
            writer.append_partition(message)
            writer.append_cell("lat10lon20", model)
            writer.append_complete()

        state = read_journal(path)
        assert state.manifest == {"k": 8, "seed": 42}
        assert state.complete
        assert not state.torn
        assert state.records == 4
        replayed = state.partitions["lat10lon20"][0]
        np.testing.assert_array_equal(
            replayed.summary.centroids, message.summary.centroids
        )
        np.testing.assert_array_equal(
            replayed.summary.weights, message.summary.weights
        )
        assert replayed.n_partitions == 3
        assert replayed.partial_iterations == 7
        cell = state.cells["lat10lon20"]
        np.testing.assert_array_equal(cell.centroids, model.centroids)
        np.testing.assert_array_equal(cell.weights, model.weights)
        assert cell.mse == model.mse

    def test_counters_and_bytes(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with JournalWriter(path, fsync=False) as writer:
            writer.append_partition(make_message(partition=0))
            writer.append_partition(make_message(partition=1))
            writer.append_cell("lat10lon20", make_model())
            assert writer.partition_records == 2
            assert writer.cell_records == 1
            assert writer.bytes_written() == path.stat().st_size

    def test_unknown_record_kinds_skipped(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with JournalWriter(path, fsync=False) as writer:
            writer.append({"kind": "from-the-future", "payload": 1})
            writer.append_complete()
        state = read_journal(path)
        assert state.complete
        assert state.records == 2


class TestTornRecords:
    def _journal_with_torn_tail(self, tmp_path, cut):
        path = tmp_path / JOURNAL_FILENAME
        with JournalWriter(path, fsync=False) as writer:
            writer.append_manifest({"seed": 1})
            writer.append_partition(make_message(partition=0))
            intact = path.stat().st_size
            writer.append_partition(make_message(partition=1))
        torn = path.stat().st_size
        # Simulate a crash mid-write: chop the final record.
        with open(path, "r+b") as handle:
            handle.truncate(intact + (torn - intact) // cut)
        return path, intact

    def test_reader_stops_at_last_complete_record(self, tmp_path):
        path, intact = self._journal_with_torn_tail(tmp_path, cut=2)
        state = read_journal(path)
        assert state.torn
        assert state.valid_bytes == intact
        assert list(state.partitions["lat10lon20"]) == [0]

    def test_corrupted_payload_detected_by_crc(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with JournalWriter(path, fsync=False) as writer:
            writer.append_manifest({"seed": 1})
            intact = path.stat().st_size
            writer.append_partition(make_message())
        # Flip one payload byte of the final record.
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        state = read_journal(path)
        assert state.torn
        assert state.valid_bytes == intact
        assert not state.partitions

    def test_oversized_frame_treated_as_corruption(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with JournalWriter(path, fsync=False) as writer:
            writer.append_manifest({"seed": 1})
        payload = json.dumps({"kind": "complete"}).encode()
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", 2**31, zlib.crc32(payload)))
            handle.write(payload)
        state = read_journal(path)
        assert state.torn
        assert not state.complete

    def test_writer_reopen_truncates_torn_tail(self, tmp_path):
        path, intact = self._journal_with_torn_tail(tmp_path, cut=2)
        with JournalWriter(path, fsync=False) as writer:
            writer.append_complete()
        state = read_journal(path)
        assert not state.torn
        assert state.complete
        assert list(state.partitions["lat10lon20"]) == [0]

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        path.write_bytes(b"GBK1\x01\x00\x00\x00")
        with pytest.raises(JournalFormatError, match="magic"):
            read_journal(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        path.write_bytes(b"RJL1\x63\x00\x00\x00")
        with pytest.raises(JournalFormatError, match="version"):
            read_journal(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        path.write_bytes(b"RJ")
        with pytest.raises(JournalFormatError, match="header"):
            read_journal(path)


class TestJournalState:
    def test_completed_cells_from_partitions_alone(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with JournalWriter(path, fsync=False) as writer:
            for partition in range(3):
                writer.append_partition(
                    make_message(partition=partition, n_partitions=3)
                )
            writer.append_partition(
                make_message(cell="lat0lon0", partition=0, n_partitions=2)
            )
        state = read_journal(path)
        assert state.completed_cells() == {"lat10lon20"}

    def test_replayable_excludes_finalised_cells(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        with JournalWriter(path, fsync=False) as writer:
            writer.append_partition(make_message(partition=1))
            writer.append_partition(make_message(partition=0))
            writer.append_partition(
                make_message(cell="lat0lon0", partition=0)
            )
            writer.append_cell("lat0lon0", make_model())
        state = read_journal(path)
        messages = state.replayable_messages()
        assert [m.cell_id for m in messages] == ["lat10lon20", "lat10lon20"]
        # Sorted by partition regardless of journal order.
        assert [m.partition for m in messages] == [0, 1]


class TestManifestValidation:
    def test_mismatch_names_every_differing_key(self):
        with pytest.raises(ManifestMismatchError, match="k:.*seed:"):
            RecoveryManager.validate_manifest(
                {"k": 4, "seed": 1, "restarts": 2},
                {"k": 8, "seed": 2, "restarts": 2},
            )

    def test_ignored_keys_are_exempt(self):
        RecoveryManager.validate_manifest(
            {"k": 4, "seed": 1}, {"k": 4, "seed": 2}, ignore=("seed",)
        )

    def test_missing_manifest_rejected(self):
        with pytest.raises(ManifestMismatchError, match="no manifest"):
            RecoveryManager.validate_manifest(None, {"k": 4})

    def test_journal_exists(self, tmp_path):
        recovery = RecoveryManager(tmp_path)
        assert not recovery.journal_exists()
        recovery.open_writer(fsync=False).close()
        assert recovery.journal_exists()


class TestBucketInventory:
    def test_inventory_lists_headers(self, tmp_path):
        cells = [
            GridCell(GridCellId(10, 20), generate_cell_points(120, seed=1)),
            GridCell(GridCellId(11, 21), generate_cell_points(80, seed=2)),
        ]
        paths = write_bucket_dir(tmp_path, cells)
        inventory = bucket_inventory(paths)
        assert [entry["cell"] for entry in inventory] == [
            "lat10lon20",
            "lat11lon21",
        ]
        assert [entry["n"] for entry in inventory] == [120, 80]

    def test_corrupt_file_reported_with_error(self, tmp_path):
        bad = tmp_path / "bad.gbk"
        bad.write_bytes(b"not a bucket")
        inventory = bucket_inventory([bad])
        assert inventory[0]["name"] == "bad.gbk"
        assert "error" in inventory[0]
