"""Tests for the warm model registry (``repro.serve.registry``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import ClusterModel
from repro.serve.registry import ModelRegistry, ServeError, UnknownCellError
from repro.stream.checkpoint import JOURNAL_FILENAME, JournalWriter, read_journal
from repro.stream.query import Query


@pytest.fixture
def chunks(rng):
    return [rng.normal(size=(150, 3)) + shift for shift in (0.0, 4.0, -3.0)]


@pytest.fixture
def pipeline_run(tmp_path):
    """A journaled pipeline run over three bucket cells."""
    from repro.data.generator import generate_cell_points
    from repro.data.gridcell import GridCell, GridCellId
    from repro.data.gridio import write_bucket_dir

    cells = [
        GridCell(GridCellId(10, 20), generate_cell_points(400, seed=1)),
        GridCell(GridCellId(11, 20), generate_cell_points(300, seed=2)),
    ]
    write_bucket_dir(tmp_path / "buckets", cells)
    run_dir = tmp_path / "run"
    result = (
        Query.scan_buckets(str(tmp_path / "buckets"))
        .partition(3)
        .cluster(k=4, restarts=2)
        .merge()
        .with_seed(7)
        .checkpoint(run_dir, fsync=False)
        .execute()
    )
    return run_dir, result


class TestWarmStart:
    def test_adopts_pipeline_models_bit_identical(self, pipeline_run):
        run_dir, result = pipeline_run
        with ModelRegistry(run_dir, fsync=False) as registry:
            assert set(registry.cells()) == set(result.models)
            assert registry.cells_adopted == len(result.models)
            for cell_id, expected in result.models.items():
                info = registry.summary(cell_id)
                np.testing.assert_array_equal(
                    info.model.centroids, expected.centroids
                )
                np.testing.assert_array_equal(
                    info.model.weights, expected.weights
                )

    def test_empty_run_dir_serves_nothing(self, tmp_path):
        with ModelRegistry(tmp_path / "fresh", fsync=False) as registry:
            assert registry.cells() == []
            with pytest.raises(UnknownCellError):
                registry.summary("nowhere")

    def test_gap_in_partition_indices_is_skipped(self, tmp_path, rng):
        run_dir = tmp_path / "run"
        with ModelRegistry(run_dir, k=3, seed=0, fsync=False) as registry:
            registry.ingest("c", rng.normal(size=(100, 2)))
            registry.ingest("c", rng.normal(size=(100, 2)))
        # Forge a journal whose partition 1 is missing: replay must stop
        # at the contiguous prefix instead of folding out of order.
        state = read_journal(run_dir / JOURNAL_FILENAME)
        forged = tmp_path / "forged"
        forged.mkdir()
        writer = JournalWriter(forged / JOURNAL_FILENAME, fsync=False)
        writer.append_partition(state.partitions["c"][0])
        message = state.partitions["c"][1]
        object.__setattr__(message, "partition", 3)
        writer.append_partition(message)
        writer.close()
        with ModelRegistry(forged, k=3, seed=0, fsync=False) as registry:
            assert registry.gaps_skipped == 1
            assert registry.summary("c").partitions == 1


class TestIngest:
    def test_mass_accumulates(self, tmp_path, chunks):
        with ModelRegistry(tmp_path / "run", k=4, fsync=False) as registry:
            for chunk in chunks:
                receipt = registry.ingest("cell", chunk)
            assert receipt.model_version == len(chunks)
            info = registry.summary("cell")
            total = sum(chunk.shape[0] for chunk in chunks)
            assert info.model.weights.sum() == pytest.approx(total)

    def test_restart_is_bit_identical(self, tmp_path, chunks):
        run_dir = tmp_path / "run"
        with ModelRegistry(run_dir, k=4, seed=9, fsync=False) as registry:
            for chunk in chunks:
                registry.ingest("cell", chunk)
            live = registry.summary("cell").model
            live_prefix = registry.prefix("cell").model
        with ModelRegistry(run_dir, k=4, seed=9, fsync=False) as warmed:
            warm = warmed.summary("cell").model
            np.testing.assert_array_equal(live.centroids, warm.centroids)
            np.testing.assert_array_equal(live.weights, warm.weights)
            assert live.mse == warm.mse
            warm_prefix = warmed.prefix("cell").model
            np.testing.assert_array_equal(
                live_prefix.centroids, warm_prefix.centroids
            )
            # Tree merges journaled by the first process were adopted.
            assert warmed.nodes_preloaded > 0

    def test_reingest_reproduces_exact_summary(self, tmp_path, chunks):
        """At-least-once convergence: the same chunk at the same index
        under the same seed produces the same journal record bits."""
        runs = []
        for attempt in range(2):
            run_dir = tmp_path / f"run{attempt}"
            with ModelRegistry(run_dir, k=4, seed=5, fsync=False) as registry:
                for chunk in chunks:
                    registry.ingest("cell", chunk)
            runs.append(read_journal(run_dir / JOURNAL_FILENAME))
        for index in runs[0].partitions["cell"]:
            first = runs[0].partitions["cell"][index].summary
            second = runs[1].partitions["cell"][index].summary
            np.testing.assert_array_equal(first.centroids, second.centroids)
            np.testing.assert_array_equal(first.weights, second.weights)

    def test_bootstraps_empty_watermark_cell(self, tmp_path, rng):
        """A journaled zero-point-cell watermark (k=0) must accept its
        first real chunk instead of crashing the fold (PR 3 regression)."""
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        writer = JournalWriter(run_dir / JOURNAL_FILENAME, fsync=False)
        writer.append_cell("deadzone", ClusterModel.empty(2))
        writer.close()
        with ModelRegistry(run_dir, k=3, fsync=False) as registry:
            assert registry.cells() == ["deadzone"]
            with pytest.raises(ServeError, match="no populated model"):
                registry.assign("deadzone", rng.normal(size=(5, 2)))
            receipt = registry.ingest("deadzone", rng.normal(size=(80, 2)))
            assert receipt.n_points == 80
            info = registry.summary("deadzone")
            assert info.model.k == 3
            assert info.model.weights.sum() == pytest.approx(80)


class TestQueries:
    def test_assign_matches_model(self, tmp_path, chunks, rng):
        with ModelRegistry(tmp_path / "run", k=4, fsync=False) as registry:
            for chunk in chunks:
                registry.ingest("cell", chunk)
            points = rng.normal(size=(20, 3))
            result = registry.assign("cell", points)
            model = registry.summary("cell").model
            expected = np.argmin(
                ((points[:, None, :] - model.centroids[None]) ** 2).sum(-1),
                axis=1,
            )
            np.testing.assert_array_equal(result.assignments, expected)
            np.testing.assert_array_equal(
                result.centroids, model.centroids[expected]
            )
            assert result.model_version == len(chunks)

    def test_window_covers_trailing_chunks(self, tmp_path, chunks):
        with ModelRegistry(tmp_path / "run", k=4, fsync=False) as registry:
            for chunk in chunks:
                registry.ingest("cell", chunk)
            answer = registry.window("cell", last_n=2)
            assert (answer.start, answer.upto) == (1, 3)
            trailing = sum(chunk.shape[0] for chunk in chunks[1:])
            assert answer.model.total_weight == pytest.approx(trailing)

    def test_unknown_cell_raises(self, tmp_path):
        with ModelRegistry(tmp_path / "run", fsync=False) as registry:
            with pytest.raises(UnknownCellError, match="neither"):
                registry.assign("ghost", np.zeros((1, 2)))


class TestFreshnessAndEviction:
    def test_ttl_marks_responses_stale(self, tmp_path, chunks):
        with ModelRegistry(
            tmp_path / "run", k=4, ttl_seconds=0.01, fsync=False
        ) as registry:
            registry.ingest("cell", chunks[0])
            import time

            time.sleep(0.05)
            info = registry.summary("cell")
            assert info.stale
            assert info.age_seconds > 0.01
            assert registry.stale_served == 1
            # A fresh fold resets the clock.
            registry.ingest("cell", chunks[1])
            assert not registry.summary("cell").stale

    def test_evicted_cell_rewarms_lazily(self, tmp_path, chunks):
        with ModelRegistry(tmp_path / "run", k=4, seed=2, fsync=False) as registry:
            for chunk in chunks:
                registry.ingest("cell", chunk)
            before = registry.summary("cell").model
            assert registry.evict_idle(0.0) == ["cell"]
            assert registry.cells() == []
            after = registry.summary("cell").model
            assert registry.rewarms == 1
            np.testing.assert_array_equal(before.centroids, after.centroids)
            np.testing.assert_array_equal(before.weights, after.weights)
            # Folding continues seamlessly after the rewarm.
            receipt = registry.ingest("cell", chunks[0])
            assert receipt.partition == len(chunks)

    def test_stats_are_json_safe(self, tmp_path, chunks):
        import json

        with ModelRegistry(tmp_path / "run", k=4, fsync=False) as registry:
            registry.ingest("cell", chunks[0])
            payload = json.dumps(registry.stats())
            assert "resident_cells" in payload


class TestValidation:
    def test_bad_k(self, tmp_path):
        with pytest.raises(ValueError, match="k must"):
            ModelRegistry(tmp_path / "run", k=0)

    def test_bad_ttl(self, tmp_path):
        with pytest.raises(ValueError, match="ttl_seconds"):
            ModelRegistry(tmp_path / "run", ttl_seconds=0.0)
