"""Unit tests for the merge k-means operator kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.merge import incremental_merge_kmeans, merge_kmeans
from repro.core.model import WeightedCentroidSet
from repro.core.partial import partial_kmeans


def _partials_from(points: np.ndarray, n_chunks: int, k: int, seed: int):
    """Helper: real partial results from equal random chunks."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(points.shape[0])
    chunks = np.array_split(points[perm], n_chunks)
    return [
        partial_kmeans(chunk, k=k, restarts=2, rng=rng, source=f"P{i}").summary
        for i, chunk in enumerate(chunks)
    ]


class TestMergeKMeans:
    def test_conserves_total_weight(self, blobs_2d):
        partials = _partials_from(blobs_2d, 4, k=4, seed=0)
        merged = merge_kmeans(partials, k=4)
        assert merged.model.total_weight == pytest.approx(blobs_2d.shape[0])

    def test_output_has_k_centroids(self, blobs_2d):
        partials = _partials_from(blobs_2d, 4, k=4, seed=0)
        merged = merge_kmeans(partials, k=4)
        assert merged.model.k == 4

    def test_recovers_blob_structure(self, blobs_2d, blob_centers_2d):
        partials = _partials_from(blobs_2d, 4, k=4, seed=1)
        merged = merge_kmeans(partials, k=4)
        for center in blob_centers_2d:
            nearest = np.min(
                ((merged.model.centroids - center) ** 2).sum(axis=1)
            )
            assert nearest < 0.5

    def test_small_pool_returned_unchanged(self):
        tiny = WeightedCentroidSet(
            centroids=np.array([[0.0], [1.0]]), weights=np.array([2.0, 3.0])
        )
        merged = merge_kmeans([tiny], k=5)
        assert merged.model.k == 2
        assert merged.iterations == 0
        assert merged.mse == 0.0

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_kmeans([], k=3)

    def test_single_partial_roundtrips_weight(self, blobs_2d, rng):
        summary = partial_kmeans(blobs_2d, k=6, restarts=1, rng=rng).summary
        merged = merge_kmeans([summary], k=4)
        assert merged.model.total_weight == pytest.approx(blobs_2d.shape[0])

    def test_weighted_mean_preserved(self, blobs_2d):
        """Merging cannot move the overall center of mass."""
        partials = _partials_from(blobs_2d, 5, k=4, seed=2)
        merged = merge_kmeans(partials, k=4)
        np.testing.assert_allclose(
            merged.model.mean(), blobs_2d.mean(axis=0), rtol=1e-8
        )

    def test_large_partition_dominates(self):
        """A centroid from a much larger partition must carry its weight
        through the merge (the paper's relative-size argument)."""
        heavy = WeightedCentroidSet(np.array([[0.0]]), np.array([1000.0]))
        light = WeightedCentroidSet(np.array([[10.0]]), np.array([1.0]))
        merged = merge_kmeans([heavy, light], k=1)
        assert merged.model.centroids[0, 0] == pytest.approx(
            10.0 / 1001.0, rel=1e-6
        )

    def test_seconds_nonnegative(self, blobs_2d):
        partials = _partials_from(blobs_2d, 3, k=4, seed=3)
        assert merge_kmeans(partials, k=4).seconds >= 0.0


class TestIncrementalMerge:
    def test_conserves_total_weight(self, blobs_2d):
        partials = _partials_from(blobs_2d, 4, k=4, seed=0)
        merged = incremental_merge_kmeans(partials, k=4)
        assert merged.model.total_weight == pytest.approx(blobs_2d.shape[0])

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError, match="at least one"):
            incremental_merge_kmeans([], k=3)

    def test_single_partial_passthrough(self, blobs_2d, rng):
        summary = partial_kmeans(blobs_2d, k=4, restarts=1, rng=rng).summary
        merged = incremental_merge_kmeans([summary], k=4)
        np.testing.assert_array_equal(merged.model.centroids, summary.centroids)

    def test_bounded_working_set(self, blobs_2d):
        """The running summary never exceeds k centroids between folds —
        the memory property that motivates incremental merging."""
        partials = _partials_from(blobs_2d, 6, k=4, seed=5)
        merged = incremental_merge_kmeans(partials, k=4)
        assert merged.model.k <= 4 + partials[-1].k

    def test_collective_usually_at_least_as_good(self, blobs_6d):
        """On average the collective merge should not be worse — the
        paper's statistical-fairness argument.  Compared on a fixed seed
        where the effect is visible."""
        from repro.core.quality import mse as evaluate_mse

        partials = _partials_from(blobs_6d, 6, k=5, seed=8)
        collective = merge_kmeans(partials, k=5)
        incremental = incremental_merge_kmeans(partials, k=5)
        collective_mse = evaluate_mse(blobs_6d, collective.model.centroids)
        incremental_mse = evaluate_mse(blobs_6d, incremental.model.centroids)
        assert collective_mse <= incremental_mse * 1.5


class TestMergeRestarts:
    def test_zero_restarts_is_paper_behavior(self, blobs_2d):
        partials = _partials_from(blobs_2d, 4, k=4, seed=0)
        base = merge_kmeans(partials, k=4)
        explicit = merge_kmeans(partials, k=4, extra_random_restarts=0)
        np.testing.assert_array_equal(
            base.model.centroids, explicit.model.centroids
        )

    def test_restarts_never_hurt_merge_error(self, blobs_6d):
        partials = _partials_from(blobs_6d, 6, k=5, seed=1)
        base = merge_kmeans(partials, k=5)
        improved = merge_kmeans(
            partials,
            k=5,
            extra_random_restarts=4,
            rng=np.random.default_rng(0),
        )
        assert improved.mse <= base.mse + 1e-12

    def test_restart_iterations_accumulate(self, blobs_2d):
        partials = _partials_from(blobs_2d, 4, k=4, seed=2)
        base = merge_kmeans(partials, k=4)
        more = merge_kmeans(
            partials,
            k=4,
            extra_random_restarts=3,
            rng=np.random.default_rng(0),
        )
        assert more.iterations > base.iterations

    def test_negative_restarts_rejected(self, blobs_2d):
        partials = _partials_from(blobs_2d, 2, k=3, seed=0)
        with pytest.raises(ValueError, match="extra_random_restarts"):
            merge_kmeans(partials, k=3, extra_random_restarts=-1)

    def test_pipeline_exposes_merge_restarts(self, blobs_6d):
        from repro.core.pipeline import PartialMergeKMeans

        with pytest.raises(ValueError, match="merge_restarts"):
            PartialMergeKMeans(k=4, merge_restarts=-1)
        base = PartialMergeKMeans(
            k=5, restarts=2, n_chunks=5, seed=3
        ).fit(blobs_6d)
        improved = PartialMergeKMeans(
            k=5, restarts=2, n_chunks=5, seed=3, merge_restarts=3
        ).fit(blobs_6d)
        assert improved.merge.mse <= base.merge.mse + 1e-12

    def test_mass_conserved_with_restarts(self, blobs_2d):
        partials = _partials_from(blobs_2d, 4, k=4, seed=3)
        merged = merge_kmeans(
            partials,
            k=4,
            extra_random_restarts=2,
            rng=np.random.default_rng(1),
        )
        assert merged.model.total_weight == pytest.approx(blobs_2d.shape[0])
