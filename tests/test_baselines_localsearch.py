"""Unit tests for the STREAM/LOCALSEARCH baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.localsearch import StreamLocalSearch


class TestStreamLocalSearch:
    def test_basic_fit(self, blobs_6d):
        model = StreamLocalSearch(k=5, batch_size=150, seed=0).fit(blobs_6d)
        assert model.method == "stream-localsearch"
        assert model.k <= 5
        assert model.mse >= 0.0
        assert model.extra["points_seen"] == blobs_6d.shape[0]

    def test_weights_cover_all_points(self, blobs_6d):
        model = StreamLocalSearch(k=5, batch_size=100, seed=0).fit(blobs_6d)
        assert model.weights.sum() == pytest.approx(blobs_6d.shape[0])

    def test_compressions_triggered_by_small_retention(self, blobs_6d):
        model = StreamLocalSearch(
            k=4, batch_size=50, retention_limit=4, seed=0
        ).fit(blobs_6d)
        assert model.extra["compressions"] >= 1

    def test_no_compressions_with_large_retention(self, blobs_6d):
        model = StreamLocalSearch(
            k=4, batch_size=300, retention_limit=10_000, seed=0
        ).fit(blobs_6d)
        assert model.extra["compressions"] == 0

    def test_fit_stream_from_generator(self, blobs_6d):
        batches = (blobs_6d[i : i + 100] for i in range(0, 600, 100))
        model = StreamLocalSearch(k=5, seed=0).fit_stream(
            batches, evaluate_on=blobs_6d
        )
        assert model.partitions == 6

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="no batches"):
            StreamLocalSearch(k=3, seed=0).fit_stream(iter([]))

    def test_quality_reasonable_on_blobs(self, blobs_2d):
        model = StreamLocalSearch(
            k=4, batch_size=100, restarts=3, seed=0
        ).fit(blobs_2d)
        # Four well-separated blobs: streaming should land near them.
        assert model.mse < 10.0

    def test_validation(self):
        with pytest.raises(ValueError, match="k must"):
            StreamLocalSearch(k=0)
        with pytest.raises(ValueError, match="batch_size"):
            StreamLocalSearch(k=3, batch_size=0)
        with pytest.raises(ValueError, match="retention_limit"):
            StreamLocalSearch(k=5, retention_limit=3)

    def test_deterministic(self, blobs_6d):
        a = StreamLocalSearch(k=5, batch_size=150, seed=9).fit(blobs_6d)
        b = StreamLocalSearch(k=5, batch_size=150, seed=9).fit(blobs_6d)
        np.testing.assert_array_equal(a.centroids, b.centroids)
