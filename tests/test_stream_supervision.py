"""Supervised recovery tests: retry policies, restart and degrade.

The two acceptance scenarios from the fault-tolerance issue live here:

* a seeded crash of a partial-k-means clone under ``restart`` reproduces
  the unfaulted run's final model *exactly* (same seed), and
* under ``degrade`` the plan completes, the loss is recorded in the
  execution metrics, and the merged model's MSE stays within a bounded
  factor of the clean run.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro.stream.errors import (
    ExecutionError,
    GraphValidationError,
    InjectedFault,
    OperatorTimeout,
)
from repro.stream.executor import Executor
from repro.stream.faults import FaultPlan, FaultSpec
from repro.stream.graph import DataflowGraph
from repro.stream.kmeans_ops import run_partial_merge_stream
from repro.stream.operators import FunctionTransform, Sink, Source, Transform
from repro.stream.planner import Planner
from repro.stream.query import Query
from repro.stream.scheduler import ResourceManager
from repro.stream.supervision import (
    RetryPolicy,
    SupervisionPolicy,
    Supervisor,
)
from tests.conftest import make_blobs


class RangeSource(Source):
    def __init__(self, n: int, name: str = "src"):
        super().__init__(name)
        self.n = n

    def generate(self):
        yield from range(self.n)


class CollectSink(Sink):
    def __init__(self, name: str = "sink"):
        super().__init__(name)
        self.items = []

    def consume(self, item):
        self.items.append(item)

    def result(self):
        return self.items


def build_graph(transform, n_items=10, supervision=None):
    graph = DataflowGraph()
    graph.add(RangeSource(n_items))
    graph.add(transform, supervision=supervision)
    graph.add(CollectSink())
    graph.connect("src", transform.name)
    graph.connect(transform.name, "sink")
    return graph


def run(graph, supervisor=None, fault_plan=None, clones=1):
    plan = Planner(ResourceManager(worker_slots=3)).plan(
        graph, clone_overrides={"work": clones}, fault_plan=fault_plan
    )
    return Executor(supervisor=supervisor).run(plan)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)

    def test_backoff_sequence_caps_at_max_delay(self):
        policy = RetryPolicy(
            max_retries=5, base_delay=0.1, backoff_factor=2.0, max_delay=0.35
        )
        rng = random.Random(0)
        delays = [policy.delay_before(i, rng) for i in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.35, 0.35])

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(
            max_retries=3, base_delay=0.1, jitter=0.5, seed=42
        )
        a = [policy.delay_before(i, policy.rng_for("op")) for i in range(3)]
        b = [policy.delay_before(i, policy.rng_for("op")) for i in range(3)]
        assert a == b
        # Jitter stays inside the +/- 50% band around each backoff step.
        for i, d in enumerate(a):
            base = 0.1 * 2.0**i
            assert 0.5 * base <= d <= 1.5 * base

    def test_injected_fault_not_retryable_by_default(self):
        policy = RetryPolicy(max_retries=3)
        assert not policy.is_retryable(InjectedFault("op", 0, "boom"))
        assert policy.is_retryable(ConnectionError("transient"))

    def test_injected_fault_retryable_when_listed(self):
        policy = RetryPolicy(max_retries=3, retryable_errors=(InjectedFault,))
        assert policy.is_retryable(InjectedFault("op", 0, "boom"))


class FlakyTransform(Transform):
    """Fails the first ``failures_per_item`` attempts on each item."""

    def __init__(self, failures_per_item: int, name: str = "work"):
        super().__init__(name)
        self.failures_per_item = failures_per_item
        self.attempts: dict[int, int] = {}

    def process(self, item):
        seen = self.attempts.get(item, 0)
        self.attempts[item] = seen + 1
        if seen < self.failures_per_item:
            raise ConnectionError("transient")
        return [item]


class TestRetryExecution:
    def test_backoff_policy_on_transform_attribute(self):
        flaky = FlakyTransform(2)
        flaky.retry_policy = RetryPolicy(max_retries=3, base_delay=0.001)
        outcome = run(build_graph(flaky, n_items=5))
        assert outcome.value == list(range(5))
        op = next(m for m in outcome.metrics.operators if m.name == "work")
        assert op.retries == 10  # 2 retries per item x 5 items

    def test_supervisor_default_retry_policy(self):
        flaky = FlakyTransform(1)
        supervisor = Supervisor(retry_policy=RetryPolicy(max_retries=2))
        outcome = run(build_graph(flaky, n_items=4), supervisor=supervisor)
        assert outcome.value == list(range(4))
        assert outcome.metrics.total_retries == 4

    def test_timeout_raises_operator_timeout(self):
        class Slow(Transform):
            def __init__(self):
                super().__init__("work")

            def process(self, item):
                time.sleep(0.5)
                return [item]

        slow = Slow()
        slow.retry_policy = RetryPolicy(max_retries=0, timeout=0.05)
        with pytest.raises(ExecutionError) as excinfo:
            run(build_graph(slow, n_items=1))
        assert isinstance(excinfo.value.failures[0].__cause__, OperatorTimeout)


class TestSupervisionPolicyValidation:
    def test_modes(self):
        assert SupervisionPolicy.fail_fast().mode == "fail-fast"
        assert SupervisionPolicy.restart(3).max_restarts == 3
        assert SupervisionPolicy.degrade().mode == "degrade"
        with pytest.raises(ValueError):
            SupervisionPolicy(mode="reboot")
        with pytest.raises(ValueError):
            SupervisionPolicy.restart(0)

    def test_graph_rejects_policy_on_source_and_sink(self):
        graph = build_graph(FunctionTransform("work", lambda i: [i]))
        with pytest.raises(GraphValidationError, match="transforms only"):
            graph.set_supervision("src", SupervisionPolicy.degrade())
        with pytest.raises(GraphValidationError, match="transforms only"):
            graph.set_supervision("sink", SupervisionPolicy.restart(1))
        with pytest.raises(GraphValidationError, match="unknown"):
            graph.set_supervision("ghost", SupervisionPolicy.degrade())


class TestRestartAndDegradeOnSimpleGraphs:
    def test_restart_replaces_instance_and_recovers(self):
        fp = FaultPlan([FaultSpec(target="work", kind="crash", at_index=4)])
        graph = build_graph(
            FunctionTransform("work", lambda i: [i * i]),
            n_items=10,
            supervision=SupervisionPolicy.restart(1),
        )
        outcome = run(graph, fault_plan=fp)
        assert outcome.value == [i * i for i in range(10)]
        assert outcome.metrics.total_restarts == 1
        assert outcome.metrics.injected_faults == 1

    def test_restart_budget_exhaustion_escalates(self):
        fp = FaultPlan(
            [FaultSpec(target="work", kind="crash",
                       probability=1.0, max_injections=10)]
        )
        graph = build_graph(
            FunctionTransform("work", lambda i: [i]),
            n_items=5,
            supervision=SupervisionPolicy.restart(2),
        )
        with pytest.raises(ExecutionError) as excinfo:
            run(graph, fault_plan=fp)
        assert isinstance(excinfo.value.failures[0].__cause__, InjectedFault)

    def test_degrade_drops_item_and_records_loss(self):
        fp = FaultPlan([FaultSpec(target="work", kind="crash", at_index=3)])
        graph = build_graph(
            FunctionTransform("work", lambda i: [i]),
            n_items=8,
            supervision=SupervisionPolicy.degrade(),
        )
        outcome = run(graph, fault_plan=fp)
        assert outcome.value == [i for i in range(8) if i != 3]
        assert outcome.metrics.total_degraded == 1
        assert len(outcome.metrics.lost_partitions) == 1

    def test_stall_plus_timeout_degrades_item(self):
        fp = FaultPlan(
            [FaultSpec(target="work", kind="stall",
                       at_index=2, delay_seconds=1.0)]
        )
        work = FunctionTransform("work", lambda i: [i])
        work.retry_policy = RetryPolicy(max_retries=0, timeout=0.05)
        graph = build_graph(
            work, n_items=6, supervision=SupervisionPolicy.degrade()
        )
        outcome = run(graph, fault_plan=fp)
        assert outcome.value == [i for i in range(6) if i != 2]
        assert outcome.metrics.total_degraded == 1


@pytest.fixture
def cells():
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    return {
        "cellA": make_blobs(80, centers, scale=0.3, seed=5),
        "cellB": make_blobs(70, centers, scale=0.3, seed=6),
    }


def clean_run(cells, **kwargs):
    return run_partial_merge_stream(
        cells, k=3, restarts=2, n_chunks=4, seed=0,
        partial_clones=1, max_iter=40, **kwargs
    )


class TestKMeansRecovery:
    """The issue's acceptance scenarios on the real partial/merge query."""

    def test_restart_reproduces_unfaulted_model_exactly(self, cells):
        clean_models, _ = clean_run(cells)
        fp = FaultPlan([FaultSpec(target="partial", kind="crash", at_index=3)])
        models, outcome = clean_run(
            cells,
            fault_plan=fp,
            supervision={"partial": SupervisionPolicy.restart(2)},
        )
        assert outcome.metrics.total_restarts == 1
        assert outcome.metrics.injected_faults == 1
        for cell in cells:
            assert (
                models[cell].centroids.tobytes()
                == clean_models[cell].centroids.tobytes()
            )
            assert (
                models[cell].weights.tobytes()
                == clean_models[cell].weights.tobytes()
            )
            assert models[cell].mse == clean_models[cell].mse

    def test_degrade_completes_with_bounded_mse_and_recorded_loss(self, cells):
        clean_models, _ = clean_run(cells)
        fp = FaultPlan([FaultSpec(target="partial", kind="crash", at_index=2)])
        models, outcome = clean_run(
            cells,
            fault_plan=fp,
            supervision={"partial": SupervisionPolicy.degrade()},
        )
        # The loss is visible in the metrics...
        assert outcome.metrics.total_degraded == 1
        assert outcome.metrics.lost_partitions == ["cellA/P2"]
        # ...every cell still gets a model from surviving centroids...
        assert set(models) == set(cells)
        assert models["cellA"].partitions == 3  # one of four dropped
        # ...and quality stays within a bounded factor of the clean run.
        for cell in cells:
            assert models[cell].mse <= clean_models[cell].mse * 4.0 + 1e-6

    def test_same_fault_plan_replayed_twice_identical_traces(self, cells):
        def fresh_plan():
            return FaultPlan(
                [
                    FaultSpec(target="partial", kind="crash", at_index=3),
                    FaultSpec(target="partial", kind="delay",
                              probability=0.4, delay_seconds=0.0),
                ],
                seed=3,
            )

        fp_a, fp_b = fresh_plan(), fresh_plan()
        models_a, _ = clean_run(
            cells, fault_plan=fp_a,
            supervision={"partial": SupervisionPolicy.restart(1)},
        )
        models_b, _ = clean_run(
            cells, fault_plan=fp_b,
            supervision={"partial": SupervisionPolicy.restart(1)},
        )
        assert fp_a.trace() == fp_b.trace()
        for cell in cells:
            assert (
                models_a[cell].centroids.tobytes()
                == models_b[cell].centroids.tobytes()
            )


class TestQueryIntegration:
    def test_supervision_and_fault_plan_via_query_builder(self, cells):
        fp = FaultPlan([FaultSpec(target="partial", kind="crash", at_index=1)])
        result = (
            Query.scan_cells(cells)
            .partition(3)
            .cluster(k=3, restarts=1, max_iter=30)
            .merge()
            .with_partial_clones(1)
            .with_seed(0)
            .with_supervision(
                {"partial": SupervisionPolicy.restart(1)},
                retry_policy=RetryPolicy(max_retries=0),
            )
            .execute(fault_plan=fp)
        )
        assert set(result.models) == set(cells)
        assert result.execution.metrics.total_restarts == 1
        assert result.execution.metrics.injected_faults == 1


@pytest.mark.stress
class TestChaosStress:
    """Heavier randomized chaos runs; excluded from the default run."""

    def test_mixed_faults_many_items_deterministic(self):
        def fresh_plan():
            return FaultPlan(
                [
                    FaultSpec(target="work", kind="delay",
                              probability=0.05, delay_seconds=0.0005),
                    FaultSpec(target="work", kind="crash", at_index=57),
                    FaultSpec(target="work", kind="crash", at_index=211,
                              max_injections=1),
                    FaultSpec(target="src", kind="delay",
                              probability=0.02, delay_seconds=0.0005),
                ],
                seed=9,
            )

        traces = []
        for _ in range(3):
            fp = fresh_plan()
            graph = build_graph(
                FunctionTransform("work", lambda i: [i + 1]),
                n_items=400,
                supervision=SupervisionPolicy.restart(2),
            )
            outcome = run(graph, fault_plan=fp)
            assert outcome.value == [i + 1 for i in range(400)]
            assert outcome.metrics.total_restarts == 2
            traces.append(fp.trace())
        assert traces[0] == traces[1] == traces[2]

    def test_degrade_under_probabilistic_crashes_keeps_streaming(self):
        fp = FaultPlan(
            [FaultSpec(target="work", kind="crash",
                       probability=0.1, max_injections=30)],
            seed=13,
        )
        graph = build_graph(
            FunctionTransform("work", lambda i: [i]),
            n_items=300,
            supervision=SupervisionPolicy.degrade(),
        )
        outcome = run(graph, fault_plan=fp)
        dropped = outcome.metrics.total_degraded
        assert dropped == len(fp.trace())
        assert len(outcome.value) == 300 - dropped
        assert dropped > 0
