"""Determinism regression: identical seeds must give byte-identical models.

Chunk order and every RNG draw are fixed by the seed: each partition's
RNG is a pure function of (seed, cell, partition), never of processing
order, so runs must agree to the last bit across executors, clone counts
and execution backends (threads vs worker processes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.adaptive import AdaptiveExecutor
from repro.stream.executor import Executor
from repro.stream.kmeans_ops import (
    build_partial_merge_graph,
    run_partial_merge_stream,
)
from repro.stream.planner import Planner
from repro.stream.scheduler import ResourceManager
from tests.conftest import make_blobs


@pytest.fixture
def cells():
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [8.0, 0.0]])
    return {
        "north": make_blobs(90, centers, scale=0.4, seed=21),
        "south": make_blobs(75, centers, scale=0.4, seed=22),
    }


def run_simple(cells, seed):
    models, _ = run_partial_merge_stream(
        cells, k=3, restarts=2, n_chunks=3, seed=seed,
        partial_clones=1, max_iter=40,
    )
    return models


def run_processes(cells, seed, clones=2):
    models, _ = run_partial_merge_stream(
        cells, k=3, restarts=2, n_chunks=3, seed=seed,
        partial_clones=clones, max_iter=40, backend="processes",
    )
    return models


def run_adaptive(cells, seed):
    # Graph operators are stateful — build a fresh one per run.
    graph = build_partial_merge_graph(
        cells, k=3, restarts=2, n_chunks=3, seed=seed, max_iter=40
    )
    plan = Planner(ResourceManager(worker_slots=4)).plan(
        graph, clone_overrides={"partial": 1}
    )
    outcome = AdaptiveExecutor(max_extra_clones=0).run(plan)
    return outcome.value


def assert_models_identical(a, b):
    assert set(a) == set(b)
    for cell in a:
        assert a[cell].centroids.tobytes() == b[cell].centroids.tobytes()
        assert a[cell].weights.tobytes() == b[cell].weights.tobytes()
        assert a[cell].mse == b[cell].mse


class TestDeterminism:
    def test_same_seed_byte_identical_across_executor_runs(self, cells):
        assert_models_identical(run_simple(cells, 7), run_simple(cells, 7))

    def test_same_seed_byte_identical_executor_vs_adaptive(self, cells):
        assert_models_identical(run_simple(cells, 7), run_adaptive(cells, 7))

    def test_adaptive_runs_agree_with_each_other(self, cells):
        assert_models_identical(run_adaptive(cells, 3), run_adaptive(cells, 3))

    def test_thread_and_process_backends_bit_identical(self, cells):
        """The tentpole guarantee: offloading partial clones to worker
        processes must not change a single output bit."""
        assert_models_identical(run_simple(cells, 7), run_processes(cells, 7))

    def test_process_backend_runs_agree_with_each_other(self, cells):
        assert_models_identical(
            run_processes(cells, 5), run_processes(cells, 5, clones=3)
        )

    def test_different_seed_changes_model(self, cells):
        a, b = run_simple(cells, 1), run_simple(cells, 2)
        assert any(
            a[cell].centroids.tobytes() != b[cell].centroids.tobytes()
            for cell in a
        )
