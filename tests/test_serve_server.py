"""Tests for the micro-batched serving loop (``repro.serve.server``)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve.batching import RequestBatcher, group_requests
from repro.serve.loadgen import LoadGenerator
from repro.serve.registry import ModelRegistry, UnknownCellError
from repro.serve.server import ClusterServer


@pytest.fixture
def server(tmp_path, rng):
    registry = ModelRegistry(tmp_path / "run", k=3, seed=1, fsync=False)
    with ClusterServer(registry, query_workers=2) as srv:
        srv.ingest("a", rng.normal(size=(120, 2)))
        srv.ingest("b", rng.normal(size=(120, 2)) + 6.0)
        yield srv


class TestBatcher:
    def test_collects_up_to_max_batch(self):
        batcher = RequestBatcher(max_batch=3, max_delay_seconds=0.5)
        for index in range(5):
            batcher.submit("assign", "cell", {"i": index})
        first = batcher.next_batch(timeout=0.1)
        assert [r.payload["i"] for r in first] == [0, 1, 2]
        second = batcher.next_batch(timeout=0.1)
        assert [r.payload["i"] for r in second] == [3, 4]

    def test_idle_timeout_returns_none(self):
        batcher = RequestBatcher()
        assert batcher.next_batch(timeout=0.01) is None

    def test_close_drains_to_empty_batch(self):
        batcher = RequestBatcher()
        batcher.close()
        assert batcher.next_batch(timeout=0.1) == []
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit("assign", "cell")

    def test_grouping_preserves_arrival_order(self):
        batcher = RequestBatcher(max_batch=6, max_delay_seconds=0.2)
        for op, cell in [
            ("assign", "a"),
            ("summary", "a"),
            ("assign", "a"),
            ("assign", "b"),
        ]:
            batcher.submit(op, cell)
        groups = group_requests(batcher.next_batch(timeout=0.1))
        assert [key for key, _ in groups] == [
            ("assign", "a"),
            ("summary", "a"),
            ("assign", "b"),
        ]
        assert len(dict(groups)[("assign", "a")]) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            RequestBatcher(max_batch=0)
        with pytest.raises(ValueError, match="max_delay_seconds"):
            RequestBatcher(max_delay_seconds=-1.0)


class TestServer:
    def test_sync_roundtrip(self, server, rng):
        points = rng.normal(size=(7, 2))
        result = server.assign("a", points)
        assert result.assignments.shape == (7,)
        assert result.model_version == 1
        info = server.summary("a")
        assert info.model.weights.sum() == pytest.approx(120)
        assert sorted(server.cells()) == ["a", "b"]

    def test_pooled_assign_matches_individual(self, server, rng):
        """Same-cell assigns answered in one pooled batch must carry the
        exact bits of individually-answered requests."""
        queries = [rng.normal(size=(5, 2)) for _ in range(6)]
        expected = [server.assign("a", q) for q in queries]
        futures = [server.submit("assign", "a", points=q) for q in queries]
        pooled = [f.result(timeout=10) for f in futures]
        for one, many in zip(expected, pooled):
            np.testing.assert_array_equal(one.assignments, many.assignments)
            np.testing.assert_array_equal(one.sq_dists, many.sq_dists)
            np.testing.assert_array_equal(one.centroids, many.centroids)

    def test_malformed_member_fails_alone(self, server, rng):
        good = rng.normal(size=(4, 2))
        futures = [
            server.submit("assign", "a", points=good),
            server.submit("assign", "a", points=rng.normal(size=(4, 5))),
            server.submit("assign", "a", points=good),
        ]
        assert futures[0].result(timeout=10).assignments.shape == (4,)
        assert futures[2].result(timeout=10).assignments.shape == (4,)
        with pytest.raises(Exception):
            futures[1].result(timeout=10)

    def test_ingest_order_is_submission_order(self, server, rng):
        futures = [
            server.submit("ingest", "a", points=rng.normal(size=(30, 2)))
            for _ in range(4)
        ]
        receipts = [f.result(timeout=10) for f in futures]
        assert [r.partition for r in receipts] == [1, 2, 3, 4]

    def test_unknown_cell_propagates(self, server):
        with pytest.raises(UnknownCellError):
            server.assign("ghost", np.zeros((1, 2)))

    def test_unknown_endpoint_rejected(self, server):
        with pytest.raises(ValueError, match="unknown endpoint"):
            server.submit("drop-tables", "a")

    def test_stats_merges_registry_and_serving(self, server, rng):
        server.assign("a", rng.normal(size=(3, 2)))
        stats = server.stats()
        assert stats["ingests"] == 2
        assert stats["serving"]["endpoints"]["assign"]["requests"] >= 1
        assert stats["serving"]["qps"] > 0

    def test_submit_after_close_raises(self, tmp_path, rng):
        registry = ModelRegistry(tmp_path / "r2", k=3, fsync=False)
        srv = ClusterServer(registry, query_workers=0).start()
        srv.ingest("a", rng.normal(size=(50, 2)))
        srv.close()
        with pytest.raises(RuntimeError, match="not running"):
            srv.submit("summary", "a")

    def test_inline_mode_serves_queries(self, tmp_path, rng):
        registry = ModelRegistry(tmp_path / "r3", k=3, fsync=False)
        with ClusterServer(registry, query_workers=0) as srv:
            srv.ingest("a", rng.normal(size=(60, 2)))
            assert srv.summary("a").partitions == 1

    def test_concurrent_clients(self, server, rng):
        errors: list[Exception] = []

        def client(seed: int) -> None:
            local = np.random.default_rng(seed)
            try:
                for _ in range(20):
                    server.assign("a", local.normal(size=(4, 2)))
                    server.summary("b")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert server.metrics.total_requests >= 160

    def test_validation(self, tmp_path):
        registry = ModelRegistry(tmp_path / "r4", k=3, fsync=False)
        with pytest.raises(ValueError, match="query_workers"):
            ClusterServer(registry, query_workers=-1)


class TestLoadGenerator:
    def test_deterministic_workload_reports(self, server):
        generator = LoadGenerator(
            server, ["a", "b"], seed=3, mix={"assign": 0.7, "summary": 0.3}
        )
        report = generator.run(0.3, concurrency=2)
        assert report.total_requests > 0
        assert report.errors == 0
        assert report.qps > 0
        assert set(report.endpoints) == {"assign", "summary"}
        for stats in report.endpoints.values():
            assert stats["p50_ms"] <= stats["p99_ms"] or stats["count"] == 0
        payload = report.to_payload()
        assert payload["concurrency"] == 2

    def test_update_lag_reported_with_ingest(self, server):
        generator = LoadGenerator(
            server, ["a"], seed=1, mix={"ingest": 1.0}, ingest_points=30
        )
        report = generator.run(0.3, concurrency=1)
        assert report.endpoints["ingest"]["count"] > 0
        assert report.update_lag_ms["p99"] > 0

    def test_validation(self, server):
        with pytest.raises(ValueError, match="non-empty"):
            LoadGenerator(server, [])
        with pytest.raises(ValueError, match="unknown ops"):
            LoadGenerator(server, ["a"], mix={"frobnicate": 1.0})
        with pytest.raises(ValueError, match="sum to > 0"):
            LoadGenerator(server, ["a"], mix={"assign": 0.0})
        generator = LoadGenerator(server, ["a"])
        with pytest.raises(ValueError, match="duration_seconds"):
            generator.run(0.0)
        with pytest.raises(ValueError, match="concurrency"):
            generator.run(1.0, concurrency=0)

    def test_infers_dimensionality(self, server):
        generator = LoadGenerator(server, ["a"], seed=0)
        assert generator.dim == 2
