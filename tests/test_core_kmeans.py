"""Unit tests for the weighted Lloyd kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.convergence import CentroidShiftCriterion, MseDeltaCriterion
from repro.core.kmeans import lloyd
from repro.core.quality import mse as evaluate_mse
from repro.core.seeding import random_seeds


class TestLloydBasics:
    def test_recovers_separated_blobs(self, blobs_2d, blob_centers_2d):
        seeds = blob_centers_2d + 0.5  # perturbed truth
        result = lloyd(blobs_2d, seeds)
        assert result.converged
        # Each true center has a recovered centroid within the blob scale.
        for center in blob_centers_2d:
            nearest = np.min(((result.centroids - center) ** 2).sum(axis=1))
            assert nearest < 0.05

    def test_single_cluster_is_mean(self):
        points = np.array([[0.0, 0.0], [2.0, 0.0], [4.0, 6.0]])
        result = lloyd(points, seeds=points[:1])
        np.testing.assert_allclose(result.centroids[0], points.mean(axis=0))
        assert result.cluster_weights[0] == 3.0

    def test_k_equals_n_gives_zero_mse(self):
        points = np.random.default_rng(0).normal(size=(8, 3))
        result = lloyd(points, seeds=points.copy())
        assert result.mse == pytest.approx(0.0, abs=1e-12)

    def test_reported_mse_matches_returned_model(self, blobs_2d, rng):
        seeds = random_seeds(blobs_2d, 4, rng)
        result = lloyd(blobs_2d, seeds)
        assert result.mse == pytest.approx(
            evaluate_mse(blobs_2d, result.centroids)
        )

    def test_assignments_shape_and_range(self, blobs_2d, rng):
        seeds = random_seeds(blobs_2d, 4, rng)
        result = lloyd(blobs_2d, seeds)
        assert result.assignments.shape == (blobs_2d.shape[0],)
        assert result.assignments.min() >= 0
        assert result.assignments.max() < 4

    def test_cluster_weights_sum_to_n(self, blobs_2d, rng):
        seeds = random_seeds(blobs_2d, 4, rng)
        result = lloyd(blobs_2d, seeds)
        assert result.cluster_weights.sum() == pytest.approx(blobs_2d.shape[0])

    def test_sse_is_mse_times_mass(self, blobs_2d, rng):
        seeds = random_seeds(blobs_2d, 4, rng)
        result = lloyd(blobs_2d, seeds)
        assert result.sse == pytest.approx(result.mse * blobs_2d.shape[0])


class TestLloydWeighted:
    def test_duplicate_points_equal_integer_weights(self, rng):
        """Weighted k-means on distinct points == unweighted on duplicates."""
        base = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 10.0], [11.0, 10.0]])
        weights = np.array([3.0, 1.0, 2.0, 4.0])
        duplicated = np.repeat(base, weights.astype(int), axis=0)
        seeds = base[[0, 2]]

        weighted = lloyd(base, seeds, weights=weights)
        unweighted = lloyd(duplicated, seeds)

        order_w = np.argsort(weighted.centroids[:, 0])
        order_u = np.argsort(unweighted.centroids[:, 0])
        np.testing.assert_allclose(
            weighted.centroids[order_w], unweighted.centroids[order_u]
        )
        assert weighted.mse == pytest.approx(unweighted.mse)

    def test_zero_weight_points_do_not_pull_centroids(self):
        points = np.array([[0.0], [1.0], [1000.0]])
        weights = np.array([1.0, 1.0, 0.0])
        result = lloyd(points, seeds=np.array([[0.5]]), weights=weights)
        np.testing.assert_allclose(result.centroids[0], [0.5])

    def test_heavy_point_dominates_mean(self):
        points = np.array([[0.0], [10.0]])
        weights = np.array([99.0, 1.0])
        result = lloyd(points, seeds=np.array([[5.0]]), weights=weights)
        np.testing.assert_allclose(result.centroids[0], [0.1])


class TestLloydEmptyClusterRepair:
    def test_empty_cluster_is_reseeded(self):
        # Two seeds on top of each other: one must end up empty then be
        # repaired to a far point.
        points = np.array([[0.0, 0.0], [0.1, 0.0], [10.0, 0.0], [10.1, 0.0]])
        seeds = np.array([[0.0, 0.0], [0.0, 0.0]])
        result = lloyd(points, seeds)
        assert (result.cluster_weights > 0).all()
        assert result.mse < 1.0

    def test_repair_handles_multiple_empties(self):
        points = np.vstack([
            np.zeros((5, 2)),
            np.full((5, 2), 10.0),
            np.full((5, 2), 20.0),
        ])
        seeds = np.zeros((3, 2))
        result = lloyd(points, seeds)
        assert (result.cluster_weights > 0).all()
        assert result.mse == pytest.approx(0.0, abs=1e-12)

    def test_degenerate_all_identical_points(self):
        points = np.ones((6, 2))
        seeds = np.vstack([np.ones((1, 2)), np.zeros((1, 2))])
        result = lloyd(points, seeds)
        # One cluster holds everything; the other stays empty but the run
        # must terminate cleanly with zero error.
        assert result.mse == pytest.approx(0.0, abs=1e-12)


class TestLloydValidation:
    def test_rejects_k_greater_than_n(self):
        with pytest.raises(ValueError, match="cannot fit"):
            lloyd(np.ones((2, 2)), seeds=np.ones((3, 2)))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError, match="dimensionality"):
            lloyd(np.ones((5, 2)), seeds=np.ones((2, 3)))

    def test_rejects_bad_max_iter(self):
        with pytest.raises(ValueError, match="max_iter"):
            lloyd(np.ones((5, 2)), seeds=np.ones((2, 2)), max_iter=0)

    def test_rejects_nan_points(self):
        points = np.array([[0.0, np.nan]])
        with pytest.raises(ValueError, match="finite"):
            lloyd(points, seeds=np.zeros((1, 2)))


class TestLloydConvergence:
    def test_max_iter_caps_iterations(self, blobs_2d, rng):
        seeds = random_seeds(blobs_2d, 4, rng)
        result = lloyd(blobs_2d, seeds, max_iter=1)
        assert result.iterations == 1

    def test_iterations_positive(self, blobs_2d, rng):
        seeds = random_seeds(blobs_2d, 4, rng)
        assert lloyd(blobs_2d, seeds).iterations >= 1

    def test_custom_criterion_used(self, blobs_2d, rng):
        seeds = random_seeds(blobs_2d, 4, rng)
        loose = lloyd(blobs_2d, seeds.copy(), criterion=MseDeltaCriterion(tol=1e9))
        tight = lloyd(
            blobs_2d, seeds.copy(), criterion=CentroidShiftCriterion(tol=1e-15)
        )
        assert loose.iterations <= tight.iterations

    def test_seeds_not_mutated(self, blobs_2d, rng):
        seeds = random_seeds(blobs_2d, 4, rng)
        original = seeds.copy()
        lloyd(blobs_2d, seeds)
        np.testing.assert_array_equal(seeds, original)

    def test_deterministic(self, blobs_6d, rng):
        seeds = random_seeds(blobs_6d, 5, rng)
        a = lloyd(blobs_6d, seeds)
        b = lloyd(blobs_6d, seeds)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        assert a.iterations == b.iterations
