"""Kill-and-restart test for the serving layer.

The bar (ISSUE 8): a ``repro serve`` process SIGKILLed mid-ingest and
restarted from its journal serves ``assign`` / ``summary`` /
``prefix`` / ``window`` responses **bit-identical** to a server that
never died.  The harness drives two real server subprocesses over the
CLI's newline-JSON protocol (JSON round-trips float64 exactly, so
comparing response payloads compares model bits), re-sending any chunk
the killed server never journaled — at-least-once delivery, which the
deterministic per-``(cell, partition)`` ingest seeding converges.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import zlib

import numpy as np
import pytest

from repro.data.generator import generate_cell_points
from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import write_bucket_dir
from repro.stream.checkpoint import JOURNAL_FILENAME, read_journal
from repro.stream.query import Query

#: Serve-time chunks folded into each cell on top of the pipeline run.
CHUNKS_PER_CELL = 4
CHUNK_POINTS = 60

#: Response keys that are timing/caching/session diagnostics, not model
#: state (``folds`` counts serve-time folds *since warm start*, so a
#: restarted process legitimately reports fewer).
NONDETERMINISTIC_KEYS = {
    "age_seconds",
    "seconds",
    "cached",
    "nodes_reused",
    "partial_seconds",
    "fold_seconds",
    "folds",
}


@pytest.fixture
def seeded_run(tmp_path):
    """One journaled pipeline run, cloned into two identical run dirs."""
    cells = [
        GridCell(GridCellId(10, 20), generate_cell_points(300, seed=1)),
        GridCell(GridCellId(11, 20), generate_cell_points(250, seed=2)),
    ]
    write_bucket_dir(tmp_path / "buckets", cells)
    seed_dir = tmp_path / "seed"
    (
        Query.scan_buckets(str(tmp_path / "buckets"))
        .partition(3)
        .cluster(k=4, restarts=2)
        .merge()
        .with_seed(7)
        .checkpoint(seed_dir, fsync=False)
        .execute()
    )
    untouched = tmp_path / "run_uninterrupted"
    killed = tmp_path / "run_killed"
    shutil.copytree(seed_dir, untouched)
    shutil.copytree(seed_dir, killed)
    return untouched, killed


class ServerProc:
    """One ``repro serve`` subprocess spoken to over stdin/stdout JSON."""

    def __init__(self, run_dir) -> None:
        env = dict(os.environ)
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(run_dir),
                "--query-workers",
                "0",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        self.ready = json.loads(self._readline())
        assert self.ready.get("ready"), self.ready

    def _readline(self) -> str:
        line = self.proc.stdout.readline()
        if not line:
            raise RuntimeError("server closed its stdout")
        return line

    def rpc(self, **request) -> dict:
        self.proc.stdin.write(json.dumps(request) + "\n")
        self.proc.stdin.flush()
        response = json.loads(self._readline())
        assert response["ok"], response
        return response["result"]

    def send_only(self, **request) -> None:
        """Fire a request without waiting for its response."""
        self.proc.stdin.write(json.dumps(request) + "\n")
        self.proc.stdin.flush()

    def sigkill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def shutdown(self) -> None:
        if self.proc.poll() is not None:
            return
        try:
            self.send_only(op="shutdown")
            self.proc.wait(timeout=30)
        except Exception:
            self.proc.kill()
            self.proc.wait(timeout=30)


def chunk_for(cell_id: str, index: int, dim: int) -> list[list[float]]:
    """Deterministic serve-time chunk ``index`` for ``cell_id``."""
    rng = np.random.default_rng([zlib.crc32(cell_id.encode()), index])
    return rng.normal(size=(CHUNK_POINTS, dim)).tolist()


def probe(server: ServerProc, cells: list[str], dim: int) -> list[dict]:
    """Deterministic query battery; responses carry exact model bits."""
    responses = []
    for index, cell in enumerate(sorted(cells)):
        points = (
            np.random.default_rng([99, index]).normal(size=(9, dim)).tolist()
        )
        responses.append(server.rpc(op="assign", cell=cell, points=points))
        responses.append(server.rpc(op="summary", cell=cell))
        responses.append(server.rpc(op="prefix", cell=cell))
        responses.append(server.rpc(op="window", cell=cell, last_n=2))
    return responses


def strip_nondeterministic(responses: list[dict]) -> list[dict]:
    return [
        {k: v for k, v in r.items() if k not in NONDETERMINISTIC_KEYS}
        for r in responses
    ]


class TestWarmRestartBitIdentity:
    def test_sigkilled_server_restarts_bit_identical(self, seeded_run):
        untouched_dir, killed_dir = seeded_run

        # Reference: one server folds every chunk without interruption.
        reference = ServerProc(untouched_dir)
        try:
            cells = reference.ready["cells"]
            assert len(cells) == 2
            dim = len(reference.rpc(op="summary", cell=cells[0])["centroids"][0])
            for index in range(CHUNKS_PER_CELL):
                for cell in cells:
                    reference.rpc(
                        op="ingest",
                        cell=cell,
                        points=chunk_for(cell, index, dim),
                    )
            expected = probe(reference, cells, dim)
        finally:
            reference.shutdown()

        # Victim: same chunks, but SIGKILLed with a request in flight.
        base_counts = read_journal(
            killed_dir / JOURNAL_FILENAME
        ).partition_counts()
        victim = ServerProc(killed_dir)
        delivered = {cell: 0 for cell in cells}
        try:
            for index in range(2):
                for cell in cells:
                    victim.rpc(
                        op="ingest",
                        cell=cell,
                        points=chunk_for(cell, index, dim),
                    )
                    delivered[cell] = index + 1
            # Fire one more ingest and kill without reading the reply:
            # whether that chunk was journaled is genuinely unknown.
            victim.send_only(
                op="ingest", cell=cells[0], points=chunk_for(cells[0], 2, dim)
            )
        finally:
            victim.sigkill()

        # Restart from the journal; the journal alone says how many
        # serve chunks survived, and the client re-sends the rest
        # (at-least-once delivery).
        counts = read_journal(killed_dir / JOURNAL_FILENAME).partition_counts()
        survivor = ServerProc(killed_dir)
        try:
            for cell in cells:
                applied = counts.get(cell, 0) - base_counts.get(cell, 0)
                assert applied >= delivered[cell]
                for index in range(applied, CHUNKS_PER_CELL):
                    survivor.rpc(
                        op="ingest",
                        cell=cell,
                        points=chunk_for(cell, index, dim),
                    )
            actual = probe(survivor, cells, dim)
        finally:
            survivor.shutdown()

        assert strip_nondeterministic(expected) == strip_nondeterministic(
            actual
        )
