"""Tests for swath data-quality screening."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.quality import QualityLedger, scrub_stripe, scrub_stripes
from repro.data.swath import SwathStripe


def make_stripe(
    n: int = 20,
    orbit: int = 0,
    seed: int = 0,
) -> SwathStripe:
    rng = np.random.default_rng(seed)
    return SwathStripe(
        orbit=orbit,
        lats=rng.uniform(-89, 89, size=n),
        lons=rng.uniform(-179, 179, size=n),
        measurements=rng.normal(size=(n, 4)),
    )


class TestScrubStripe:
    def test_clean_stripe_untouched(self):
        stripe = make_stripe()
        clean, report = scrub_stripe(stripe)
        assert clean is stripe
        assert report.kept_fraction == 1.0
        assert report.dropped_nonfinite == 0

    def test_nonfinite_rows_dropped(self):
        stripe = make_stripe(10)
        stripe.measurements[3, 2] = np.nan
        stripe.measurements[7, 0] = np.inf
        clean, report = scrub_stripe(stripe)
        assert clean is not None
        assert clean.measurements.shape[0] == 8
        assert report.dropped_nonfinite == 2
        assert np.isfinite(clean.measurements).all()

    def test_bad_geolocation_dropped(self):
        stripe = make_stripe(10)
        lats = stripe.lats.copy()
        lats[0] = 95.0  # off the planet
        lats[1] = np.nan
        bad = SwathStripe(
            orbit=stripe.orbit,
            lats=lats,
            lons=stripe.lons,
            measurements=stripe.measurements,
        )
        clean, report = scrub_stripe(bad)
        assert clean is not None
        assert clean.measurements.shape[0] == 8
        assert report.dropped_geolocation == 2

    def test_everything_bad_returns_none(self):
        stripe = make_stripe(5)
        stripe.measurements[:] = np.nan
        clean, report = scrub_stripe(stripe)
        assert clean is None
        assert report.samples_out == 0
        assert report.kept_fraction == 0.0

    def test_counts_are_disjoint(self):
        """A row that is both non-finite and off-planet counts once, as
        non-finite."""
        stripe = make_stripe(10)
        stripe.measurements[0, 0] = np.nan
        lats = stripe.lats.copy()
        lats[0] = 95.0
        bad = SwathStripe(
            orbit=0, lats=lats, lons=stripe.lons,
            measurements=stripe.measurements,
        )
        __, report = scrub_stripe(bad)
        assert report.dropped_nonfinite == 1
        assert report.dropped_geolocation == 0
        assert report.samples_out == 9


class TestScrubStripes:
    def test_stream_filters_and_ledgers(self):
        stripes = [make_stripe(10, orbit=i, seed=i) for i in range(3)]
        stripes[1].measurements[:] = np.inf  # whole stripe bad
        ledger = QualityLedger()
        clean = list(scrub_stripes(iter(stripes), ledger=ledger))
        assert len(clean) == 2
        assert len(ledger.reports) == 3
        assert ledger.samples_in == 30
        assert ledger.samples_out == 20
        assert ledger.dropped == 10
        assert "30" in ledger.summary()

    def test_ledger_optional(self):
        stripes = [make_stripe(5)]
        assert len(list(scrub_stripes(stripes))) == 1

    def test_screened_stream_bins_cleanly(self):
        """End to end: contaminated stripes -> screen -> bin."""
        from repro.data.swath import bin_stripes_into_buckets

        stripes = [make_stripe(50, orbit=i, seed=i) for i in range(2)]
        stripes[0].measurements[5] = np.nan
        buckets = bin_stripes_into_buckets(scrub_stripes(stripes))
        total = sum(b.n_points for b in buckets.values())
        assert total == 99
        for bucket in buckets.values():
            frozen = bucket.freeze()
            assert np.isfinite(frozen.points).all()
