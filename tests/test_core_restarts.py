"""Unit tests for the multi-restart driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.restarts import best_of_restarts


class TestBestOfRestarts:
    def test_best_is_minimum_mse(self, blobs_2d, rng):
        report = best_of_restarts(blobs_2d, 4, restarts=5, rng=rng)
        assert report.best.mse == pytest.approx(min(report.mses))
        assert report.mses[report.best_index] == pytest.approx(report.best.mse)

    def test_records_one_entry_per_restart(self, blobs_2d, rng):
        report = best_of_restarts(blobs_2d, 4, restarts=7, rng=rng)
        assert len(report.mses) == 7
        assert len(report.iteration_counts) == 7

    def test_total_iterations_sums(self, blobs_2d, rng):
        report = best_of_restarts(blobs_2d, 4, restarts=3, rng=rng)
        assert report.total_iterations == sum(report.iteration_counts)

    def test_more_restarts_never_hurt(self, blobs_6d):
        few = best_of_restarts(
            blobs_6d, 8, restarts=1, rng=np.random.default_rng(0)
        )
        many = best_of_restarts(
            blobs_6d, 8, restarts=8, rng=np.random.default_rng(0)
        )
        # Same generator stream: the first run of `many` equals `few`'s
        # only run, so the min can only improve.
        assert many.best.mse <= few.best.mse + 1e-12

    def test_rejects_zero_restarts(self, blobs_2d, rng):
        with pytest.raises(ValueError, match="restarts"):
            best_of_restarts(blobs_2d, 4, restarts=0, rng=rng)

    def test_weighted_restarts(self, rng):
        points = np.array([[0.0], [1.0], [10.0], [11.0]])
        weights = np.array([5.0, 5.0, 1.0, 1.0])
        report = best_of_restarts(points, 2, restarts=4, rng=rng, weights=weights)
        assert report.best.cluster_weights.sum() == pytest.approx(12.0)

    def test_kmeans_plus_plus_strategy(self, blobs_2d, rng):
        report = best_of_restarts(
            blobs_2d, 4, restarts=2, rng=rng, seeding="kmeans++"
        )
        assert report.best.k == 4

    def test_unknown_strategy_raises(self, blobs_2d, rng):
        with pytest.raises(ValueError, match="unknown seeding"):
            best_of_restarts(blobs_2d, 4, restarts=1, rng=rng, seeding="bogus")
