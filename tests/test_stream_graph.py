"""Unit tests for the logical dataflow graph."""

from __future__ import annotations

import pytest

from repro.stream.errors import GraphValidationError
from repro.stream.graph import DataflowGraph
from repro.stream.operators import FunctionTransform, Sink, Source


class _ListSource(Source):
    def __init__(self, name="src", items=()):
        super().__init__(name)
        self._items = list(items)

    def generate(self):
        yield from self._items


class _CollectSink(Sink):
    def __init__(self, name="sink"):
        super().__init__(name)
        self.items = []

    def consume(self, item):
        self.items.append(item)

    def result(self):
        return self.items


def _identity(name="xform"):
    return FunctionTransform(name, lambda item: [item])


def build_linear() -> DataflowGraph:
    graph = DataflowGraph()
    graph.add(_ListSource())
    graph.add(_identity())
    graph.add(_CollectSink())
    graph.connect("src", "xform")
    graph.connect("xform", "sink")
    return graph


class TestConstruction:
    def test_valid_linear_graph(self):
        graph = build_linear()
        graph.validate()
        assert graph.sink() == "sink"
        assert graph.sources() == ["src"]

    def test_duplicate_name_rejected(self):
        graph = DataflowGraph()
        graph.add(_ListSource())
        with pytest.raises(GraphValidationError, match="duplicate"):
            graph.add(_ListSource())

    def test_unknown_operator_in_connect(self):
        graph = DataflowGraph()
        graph.add(_ListSource())
        with pytest.raises(GraphValidationError, match="unknown"):
            graph.connect("src", "nope")

    def test_self_loop_rejected(self):
        graph = DataflowGraph()
        graph.add(_identity())
        with pytest.raises(GraphValidationError, match="self-loop"):
            graph.connect("xform", "xform")

    def test_fan_out_rejected(self):
        graph = DataflowGraph()
        graph.add(_ListSource())
        graph.add(_identity("a"))
        graph.add(_identity("b"))
        graph.connect("src", "a")
        with pytest.raises(GraphValidationError, match="fan-out"):
            graph.connect("src", "b")

    def test_fan_in_allowed(self):
        graph = DataflowGraph()
        graph.add(_ListSource("src1"))
        graph.add(_ListSource("src2"))
        graph.add(_CollectSink())
        graph.connect("src1", "sink")
        graph.connect("src2", "sink")
        graph.validate()
        assert graph.upstream_of("sink") == ["src1", "src2"]

    def test_sink_cannot_produce(self):
        graph = DataflowGraph()
        graph.add(_CollectSink())
        graph.add(_identity())
        with pytest.raises(GraphValidationError, match="sink"):
            graph.connect("sink", "xform")

    def test_source_cannot_consume(self):
        graph = DataflowGraph()
        graph.add(_identity())
        graph.add(_ListSource())
        with pytest.raises(GraphValidationError, match="source"):
            graph.connect("xform", "src")

    def test_nonpositive_cost_hint_rejected(self):
        graph = DataflowGraph()
        with pytest.raises(GraphValidationError, match="cost_hint"):
            graph.add(_ListSource(), cost_hint=0.0)


class TestValidation:
    def test_empty_graph(self):
        with pytest.raises(GraphValidationError, match="empty"):
            DataflowGraph().validate()

    def test_missing_sink(self):
        graph = DataflowGraph()
        graph.add(_ListSource())
        with pytest.raises(GraphValidationError, match="exactly one sink"):
            graph.validate()

    def test_two_sinks(self):
        graph = DataflowGraph()
        graph.add(_ListSource())
        graph.add(_CollectSink("s1"))
        graph.add(_CollectSink("s2"))
        graph.connect("src", "s1")
        with pytest.raises(GraphValidationError, match="exactly one sink"):
            graph.validate()

    def test_transform_without_producer(self):
        graph = DataflowGraph()
        graph.add(_ListSource())
        graph.add(_identity())
        graph.add(_CollectSink())
        graph.connect("src", "sink")  # xform left dangling
        with pytest.raises(GraphValidationError):
            graph.validate()

    def test_source_without_consumer(self):
        graph = DataflowGraph()
        graph.add(_ListSource())
        graph.add(_ListSource("src2"))
        graph.add(_CollectSink())
        graph.connect("src", "sink")
        with pytest.raises(GraphValidationError, match="no consumer"):
            graph.validate()

    def test_no_source(self):
        graph = DataflowGraph()
        graph.add(_identity())
        graph.add(_CollectSink())
        graph.connect("xform", "sink")
        with pytest.raises(GraphValidationError):
            graph.validate()

    def test_cost_hints_retrievable(self):
        graph = DataflowGraph()
        graph.add(_ListSource(), cost_hint=2.0)
        assert graph.cost_hint("src") == 2.0

    def test_downstream_lookup(self):
        graph = build_linear()
        assert graph.downstream_of("src") == "xform"
        assert graph.downstream_of("sink") is None
