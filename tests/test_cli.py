"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.config == "quick"
        assert args.workers == 1

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--config", "huge"])

    def test_speedup_clone_list(self):
        args = build_parser().parse_args(
            ["speedup", "--clones", "1", "2", "8"]
        )
        assert args.clones == [1, 2, 8]


class TestCommands:
    def test_generate_and_cluster(self, tmp_path, capsys):
        out = tmp_path / "buckets"
        assert (
            main(
                [
                    "generate",
                    "--out",
                    str(out),
                    "--cells",
                    "1",
                    "--points",
                    "300",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        listed = capsys.readouterr().out.strip().splitlines()
        assert len(listed) == 1
        bucket_path = listed[0]

        assert (
            main(
                [
                    "cluster",
                    bucket_path,
                    "--k",
                    "6",
                    "--chunks",
                    "3",
                    "--restarts",
                    "2",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "serial" in output
        assert "partial/merge" in output

    def test_speedup_command(self, capsys):
        assert (
            main(
                [
                    "speedup",
                    "--points",
                    "300",
                    "--k",
                    "4",
                    "--chunks",
                    "2",
                    "--clones",
                    "1",
                ]
            )
            == 0
        )
        assert "Speed-up" in capsys.readouterr().out

    def test_table2_smoke_config(self, capsys):
        assert main(["table2", "--config", "smoke"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_figures_smoke_config(self, capsys):
        assert main(["figures", "--config", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output
        assert "Figure 7" in output
        assert "Figure 8" in output


class TestNewCommands:
    def test_swath_and_compress_roundtrip(self, tmp_path, capsys):
        granules = tmp_path / "granules"
        buckets = tmp_path / "buckets"
        mvh = tmp_path / "mvh"
        assert (
            main(
                [
                    "swath",
                    "--granules", str(granules),
                    "--buckets", str(buckets),
                    "--orbits", "2",
                    "--footprints", "300",
                    "--samples", "60",
                    "--min-points", "120",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "granules" in out and "buckets" in out

        assert (
            main(
                [
                    "compress",
                    str(buckets),
                    "--out", str(mvh),
                    "--k", "8",
                    "--chunks", "3",
                    "--restarts", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "compression ratio" in out
        assert list(mvh.glob("*.mvh"))

    def test_compress_empty_dir_fails(self, tmp_path, capsys):
        empty = tmp_path / "none"
        empty.mkdir()
        assert (
            main(["compress", str(empty), "--out", str(tmp_path / "o")]) == 1
        )

    def test_convergence_command(self, capsys):
        assert (
            main(
                [
                    "convergence",
                    "--sizes", "200", "400",
                    "--k", "8",
                    "--restarts", "2",
                    "--chunks", "4",
                ]
            )
            == 0
        )
        assert "Convergence study" in capsys.readouterr().out

    def test_query_command(self, tmp_path, capsys):
        main(
            [
                "generate",
                "--out", str(tmp_path / "b"),
                "--cells", "1",
                "--points", "400",
            ]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "query",
                    str(tmp_path / "b"),
                    "--k", "6",
                    "--chunks", "2",
                    "--restarts", "2",
                    "--seed", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "logical plan" in out
        assert "physical plan" in out
        assert "partitions=2" in out

    def test_query_explain_only(self, tmp_path, capsys):
        main(
            [
                "generate",
                "--out", str(tmp_path / "b"),
                "--cells", "1",
                "--points", "200",
            ]
        )
        capsys.readouterr()
        assert (
            main(
                ["query", str(tmp_path / "b"), "--k", "4", "--explain-only"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "logical plan" in out
        assert "partitions=" not in out

    def test_report_command(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert (
            main(
                [
                    "report",
                    "--config", "smoke",
                    "--out", str(out),
                    "--no-speedup",
                    "--no-convergence",
                ]
            )
            == 0
        )
        text = out.read_text()
        assert "Reproduction report" in text
        assert "Table 2" in text
        assert "Figure 7b" in text

    def test_ksens_command(self, capsys):
        assert (
            main(
                [
                    "ksens",
                    "--ks", "4", "8",
                    "--points", "400",
                    "--restarts", "1",
                    "--chunks", "3",
                ]
            )
            == 0
        )
        assert "k-sensitivity" in capsys.readouterr().out

    def test_noise_command(self, capsys):
        assert (
            main(
                [
                    "noise",
                    "--epsilons", "0.0", "0.02",
                    "--points", "500",
                    "--k", "6",
                    "--restarts", "1",
                ]
            )
            == 0
        )
        assert "Noise study" in capsys.readouterr().out


class TestErrorHandling:
    def test_corrupt_bucket_exits_2_with_one_line_error(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.gbk"
        bad.write_bytes(b"this is not a bucket file at all")
        assert main(["cluster", str(bad), "--k", "4"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_missing_bucket_exits_2(self, tmp_path, capsys):
        assert main(["cluster", str(tmp_path / "nope.gbk")]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_query_over_corrupt_dir_exits_2(self, tmp_path, capsys):
        (tmp_path / "bad.gbk").write_bytes(b"garbage")
        assert (
            main(["query", str(tmp_path), "--k", "4", "--chunks", "2"]) == 2
        )
        assert capsys.readouterr().err.startswith("error:")


class TestCheckpointCli:
    def _generate(self, tmp_path, capsys):
        out = tmp_path / "buckets"
        main(
            [
                "generate",
                "--out", str(out),
                "--cells", "2",
                "--points", "300",
            ]
        )
        capsys.readouterr()
        return out

    def test_query_checkpoint_and_resume(self, tmp_path, capsys):
        buckets = self._generate(tmp_path, capsys)
        run_dir = tmp_path / "run"
        base = [
            "query", str(buckets),
            "--k", "4", "--chunks", "2", "--restarts", "1",
            "--seed", "0", "--checkpoint-dir", str(run_dir),
        ]
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "checkpoint:" in out
        assert (run_dir / "journal.rjl").exists()

        # Re-running without --resume refuses the existing journal.
        assert main(base) == 2
        assert "already exists" in capsys.readouterr().err

        assert main(base + ["--resume"]) == 0
        assert "checkpoint:" in capsys.readouterr().out

    def test_cluster_checkpoint_flag(self, tmp_path, capsys):
        buckets = self._generate(tmp_path, capsys)
        bucket = sorted(buckets.glob("*.gbk"))[0]
        run_dir = tmp_path / "run"
        assert (
            main(
                [
                    "cluster", str(bucket),
                    "--k", "4", "--chunks", "2", "--restarts", "1",
                    "--checkpoint-dir", str(run_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "journal:" in out
        assert (run_dir / "journal.rjl").exists()

    def test_query_quarantine_flag(self, tmp_path, capsys):
        buckets = self._generate(tmp_path, capsys)
        (buckets / "bad.gbk").write_bytes(b"garbage")
        assert (
            main(
                [
                    "query", str(buckets),
                    "--k", "4", "--chunks", "2", "--restarts", "1",
                    "--seed", "0", "--on-corrupt", "quarantine",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "quarantined: 1 file(s)" in out
        assert (buckets / "quarantine" / "bad.gbk").exists()
