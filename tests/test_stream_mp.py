"""Tests for the process-parallel execution backend (repro.stream.mp)."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.stream.errors import WorkerCrashed
from repro.stream.items import DataChunk
from repro.stream.kmeans_ops import (
    PartialKMeansOperator,
    PartialKMeansSpec,
    run_partial_merge_stream,
)
from repro.stream.mp import (
    BACKEND_ENV_VAR,
    PROCESSES,
    THREADS,
    _chunk_from_shm,
    _chunk_to_shm,
    resolve_backend,
    start_worker,
    supports_process_backend,
    validate_backend,
)
from repro.stream.operators import FunctionTransform
from repro.stream.supervision import SupervisionPolicy
from tests.conftest import make_blobs


@pytest.fixture
def cells():
    centers = np.array([[0.0, 0.0], [6.0, 6.0]])
    return {
        "west": make_blobs(80, centers, scale=0.5, seed=11),
        "east": make_blobs(60, centers, scale=0.5, seed=12),
    }


class _ExplodingSpec:
    """Module-level (picklable) spec whose operator always raises."""

    def build(self):
        def explode(item):
            raise RuntimeError("boom from the worker")

        return FunctionTransform("exploder", explode)


class _BadBuildSpec:
    """Spec whose build() itself raises inside the worker."""

    def build(self):
        raise ValueError("cannot build this operator")


class TestBackendResolution:
    def test_validate_accepts_known_backends(self):
        assert validate_backend(THREADS) == "threads"
        assert validate_backend(PROCESSES) == "processes"

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            validate_backend("gpu")

    def test_first_candidate_wins(self):
        assert resolve_backend(None, PROCESSES, THREADS) == PROCESSES

    def test_defaults_to_threads(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None, None) == THREADS

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, PROCESSES)
        assert resolve_backend(None) == PROCESSES
        assert resolve_backend(THREADS) == THREADS  # explicit wins

    def test_unknown_environment_value_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(ValueError) as excinfo:
            resolve_backend(None)
        # The message must say where the bad value came from and what
        # would have been accepted.
        assert BACKEND_ENV_VAR in str(excinfo.value)
        assert "gpu" in str(excinfo.value)
        for valid in (THREADS, PROCESSES):
            assert valid in str(excinfo.value)

    def test_environment_value_whitespace_stripped(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, f"  {PROCESSES}\n")
        assert resolve_backend(None) == PROCESSES

    def test_blank_environment_value_falls_back(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "   ")
        assert resolve_backend(None) == THREADS


class TestOperatorSpec:
    def test_partial_operator_supports_backend(self):
        operator = PartialKMeansOperator(
            k=3, restarts=1, seed_sequence=np.random.SeedSequence(5)
        )
        assert supports_process_backend(operator)
        assert not supports_process_backend(
            FunctionTransform("f", lambda item: [item])
        )

    def test_spec_pickle_roundtrip_rebuilds_identical_rng(self, cells):
        operator = PartialKMeansOperator(
            k=3, restarts=2, seed_sequence=np.random.SeedSequence(42)
        )
        spec = pickle.loads(pickle.dumps(operator.to_spec()))
        assert isinstance(spec, PartialKMeansSpec)
        rebuilt = spec.build()
        chunk = DataChunk(
            cell_id="west", partition=1, points=cells["west"], n_partitions=2
        )
        (a,) = list(operator.process(chunk))
        (b,) = list(rebuilt.process(chunk))
        assert a.summary.centroids.tobytes() == b.summary.centroids.tobytes()
        assert a.summary.weights.tobytes() == b.summary.weights.tobytes()

    def test_clone_shares_spec(self):
        operator = PartialKMeansOperator(
            k=3, restarts=1, seed_sequence=np.random.SeedSequence(9)
        )
        assert operator.clone().to_spec() == operator.to_spec()


class TestSharedMemoryTransfer:
    def test_chunk_roundtrip_is_lossless(self, cells):
        chunk = DataChunk(
            cell_id="west", partition=0, points=cells["west"], n_partitions=4
        )
        header, segment = _chunk_to_shm(chunk)
        try:
            rebuilt = _chunk_from_shm(header)
        finally:
            segment.close()
            segment.unlink()
        assert rebuilt.cell_id == chunk.cell_id
        assert rebuilt.partition == chunk.partition
        assert rebuilt.n_partitions == chunk.n_partitions
        assert rebuilt.points.tobytes() == chunk.points.tobytes()
        assert header["shape"] == chunk.points.shape
        assert header["dtype"] == chunk.points.dtype.str


class TestWorkerLifecycle:
    def test_worker_matches_in_process_result(self, cells):
        operator = PartialKMeansOperator(
            k=3, restarts=2, seed_sequence=np.random.SeedSequence(7)
        )
        worker = start_worker(operator.to_spec(), name="partial#0")
        try:
            assert worker.stats.pid != os.getpid()
            chunk = DataChunk(
                cell_id="east", partition=0, points=cells["east"], n_partitions=1
            )
            (remote,) = worker.submit(chunk)
            (local,) = list(operator.process(chunk))
            assert (
                remote.summary.centroids.tobytes()
                == local.summary.centroids.tobytes()
            )
            assert worker.stats.items == 1
            assert worker.stats.shm_bytes == cells["east"].nbytes
            assert worker.stats.busy_seconds > 0
        finally:
            worker.shutdown()

    def test_worker_error_rebuilt_in_parent(self, cells):
        worker = start_worker(_ExplodingSpec(), name="exploder#0")
        try:
            chunk = DataChunk(cell_id="c", partition=0, points=cells["west"])
            with pytest.raises(RuntimeError, match="boom from the worker"):
                worker.submit(chunk)
            # The worker survives an operator error and keeps serving.
            with pytest.raises(RuntimeError, match="boom from the worker"):
                worker.submit(chunk)
        finally:
            worker.shutdown()

    def test_build_failure_surfaces_at_startup(self):
        with pytest.raises(ValueError, match="cannot build this operator"):
            start_worker(_BadBuildSpec(), name="bad#0")

    def test_spawn_context(self, cells):
        operator = PartialKMeansOperator(
            k=2, restarts=1, seed_sequence=np.random.SeedSequence(3)
        )
        worker = start_worker(
            operator.to_spec(), name="partial#0", mp_context="spawn"
        )
        try:
            chunk = DataChunk(cell_id="w", partition=0, points=cells["west"])
            (remote,) = worker.submit(chunk)
            (local,) = list(operator.process(chunk))
            assert (
                remote.summary.centroids.tobytes()
                == local.summary.centroids.tobytes()
            )
        finally:
            worker.shutdown()


class TestProcessBackendExecution:
    def test_end_to_end_with_metrics(self, cells):
        models, outcome = run_partial_merge_stream(
            cells,
            k=3,
            restarts=2,
            n_chunks=2,
            seed=5,
            backend="processes",
            workers=2,
        )
        assert set(models) == set(cells)
        metrics = outcome.metrics
        assert metrics.backend == "processes"
        assert len(metrics.workers) == 2
        assert metrics.shm_bytes > 0
        assert metrics.worker_busy_seconds > 0
        assert all(w.pid != os.getpid() for w in metrics.workers)
        assert any("backend: processes" in line for line in metrics.summary_lines())

    def test_thread_backend_reports_no_workers(self, cells):
        __, outcome = run_partial_merge_stream(
            cells, k=3, restarts=1, n_chunks=2, seed=5, backend="threads"
        )
        assert outcome.metrics.backend == "threads"
        assert outcome.metrics.workers == []

    def test_workers_argument_validated(self, cells):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            run_partial_merge_stream(cells, k=3, workers=0)

    def test_specless_transform_stays_in_thread(self):
        from repro.stream.executor import Executor
        from repro.stream.graph import DataflowGraph
        from repro.stream.operators import Sink, Source
        from repro.stream.planner import Planner

        class _Numbers(Source):
            def generate(self):
                yield from range(5)

        class _Collect(Sink):
            def __init__(self):
                super().__init__("collect")
                self.seen = []

            def consume(self, item):
                self.seen.append(item)

            def result(self):
                return sorted(self.seen)

        graph = DataflowGraph()
        graph.add(_Numbers("numbers"))
        graph.add(FunctionTransform("double", lambda item: [item * 2]))
        graph.add(_Collect())
        graph.connect("numbers", "double")
        graph.connect("double", "collect")
        plan = Planner().plan(graph, backend="processes")
        outcome = Executor().run(plan)
        assert outcome.value == [0, 2, 4, 6, 8]
        # FunctionTransform has no spec: nothing was offloaded.
        assert outcome.metrics.backend == "processes"
        assert outcome.metrics.workers == []

    def test_restart_policy_keeps_operator_in_process(self, cells):
        __, outcome = run_partial_merge_stream(
            cells,
            k=3,
            restarts=1,
            n_chunks=2,
            seed=5,
            backend="processes",
            workers=2,
            supervision={"partial": SupervisionPolicy.restart(1)},
        )
        # Restart recovery needs the in-process instance, so no workers.
        assert outcome.metrics.workers == []

    def test_plan_backend_recorded_in_describe(self, cells):
        from repro.stream.kmeans_ops import build_partial_merge_graph
        from repro.stream.planner import Planner

        graph = build_partial_merge_graph(cells, k=3, n_chunks=2, seed=1)
        plan = Planner().plan(graph, backend="processes")
        assert "backend: processes" in plan.describe()
