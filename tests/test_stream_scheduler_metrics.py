"""Tests for the resource manager and metrics containers."""

from __future__ import annotations

import time

import pytest

from repro.stream.metrics import ExecutionMetrics, OperatorMetrics, stopwatch
from repro.stream.scheduler import DEFAULT_MEMORY_BUDGET, ResourceManager


class TestResourceManager:
    def test_defaults(self):
        resources = ResourceManager()
        assert resources.memory_budget_bytes == DEFAULT_MEMORY_BUDGET
        assert resources.worker_slots >= 1

    def test_rejects_tiny_budget(self):
        with pytest.raises(ValueError, match="unreasonably small"):
            ResourceManager(memory_budget_bytes=10)

    def test_rejects_negative_slots(self):
        with pytest.raises(ValueError, match="worker_slots"):
            ResourceManager(worker_slots=-1)

    def test_max_points_scales_inverse_with_dim(self):
        resources = ResourceManager(memory_budget_bytes=1024 * 1024)
        assert resources.max_points_per_partition(
            6
        ) < resources.max_points_per_partition(3)

    def test_max_points_at_least_one(self):
        resources = ResourceManager(memory_budget_bytes=1024)
        assert resources.max_points_per_partition(1000) >= 1

    def test_partitions_ceil_division(self):
        resources = ResourceManager(memory_budget_bytes=1024 * 1024)
        cap = resources.max_points_per_partition(6)
        assert resources.partitions_for(cap, 6) == 1
        assert resources.partitions_for(cap + 1, 6) == 2

    def test_partitions_fits_budget(self):
        resources = ResourceManager(memory_budget_bytes=256 * 1024)
        n_points, dim = 100_000, 6
        parts = resources.partitions_for(n_points, dim)
        per_part = -(-n_points // parts)
        assert per_part <= resources.max_points_per_partition(dim)

    def test_rejects_bad_dim_and_points(self):
        resources = ResourceManager()
        with pytest.raises(ValueError, match="dim"):
            resources.max_points_per_partition(0)
        with pytest.raises(ValueError, match="n_points"):
            resources.partitions_for(0, 3)

    def test_clones_available_reserves_singletons(self):
        resources = ResourceManager(worker_slots=8)
        assert resources.clones_available(reserved=2) == 6
        assert resources.clones_available(reserved=100) == 1


class TestOperatorMetrics:
    def test_utilization_bounds(self):
        metrics = OperatorMetrics(name="op")
        metrics.started_at = 0.0
        metrics.finished_at = 2.0
        metrics.busy_seconds = 1.0
        assert metrics.wall_seconds == 2.0
        assert metrics.idle_seconds == 1.0
        assert metrics.utilization == 0.5

    def test_zero_wall_time(self):
        metrics = OperatorMetrics(name="op")
        assert metrics.wall_seconds == 0.0
        assert metrics.utilization == 0.0

    def test_utilization_capped_at_one(self):
        metrics = OperatorMetrics(name="op")
        metrics.started_at = 0.0
        metrics.finished_at = 1.0
        metrics.busy_seconds = 2.0  # timer overlap rounding
        assert metrics.utilization == 1.0

    def test_stopwatch_accumulates(self):
        metrics = OperatorMetrics(name="op")
        with stopwatch(metrics):
            time.sleep(0.01)
        with stopwatch(metrics):
            time.sleep(0.01)
        assert metrics.busy_seconds >= 0.02


class TestExecutionMetrics:
    def test_busy_seconds_for_aggregates_clones(self):
        metrics = ExecutionMetrics(
            operators=[
                OperatorMetrics(name="partial#0", busy_seconds=1.0),
                OperatorMetrics(name="partial#1", busy_seconds=2.0),
                OperatorMetrics(name="partially-unrelated", busy_seconds=4.0),
                OperatorMetrics(name="merge", busy_seconds=8.0),
            ]
        )
        assert metrics.busy_seconds_for("partial") == 3.0
        assert metrics.busy_seconds_for("merge") == 8.0

    def test_summary_lines_mention_all_operators(self):
        metrics = ExecutionMetrics(
            wall_seconds=1.0,
            operators=[OperatorMetrics(name="alpha"), OperatorMetrics(name="beta")],
        )
        text = "\n".join(metrics.summary_lines())
        assert "alpha" in text and "beta" in text
