"""Tests for the ECVQ-based adaptive-k partial/merge pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive_k import EcvqPartialMergeKMeans


class TestEcvqPartialMergeKMeans:
    def test_report_structure(self, blobs_6d):
        report = EcvqPartialMergeKMeans(
            k=5, lam=0.5, n_chunks=4, seed=0
        ).fit(blobs_6d)
        assert report.model.method == "ecvq-partial/merge"
        assert report.model.partitions == 4
        assert len(report.effective_ks) == 4
        assert report.model.k <= 5

    def test_mass_conserved(self, blobs_6d):
        report = EcvqPartialMergeKMeans(
            k=5, lam=0.5, n_chunks=4, seed=0
        ).fit(blobs_6d)
        assert report.model.weights.sum() == pytest.approx(blobs_6d.shape[0])

    def test_adaptive_ks_at_most_max_k(self, blobs_6d):
        report = EcvqPartialMergeKMeans(
            k=5, max_k=12, lam=1.0, n_chunks=4, seed=0
        ).fit(blobs_6d)
        assert all(1 <= ek <= 12 for ek in report.effective_ks)

    def test_harsher_lambda_prunes_more(self, blobs_6d):
        gentle = EcvqPartialMergeKMeans(
            k=5, max_k=16, lam=0.0, n_chunks=4, seed=0
        ).fit(blobs_6d)
        harsh = EcvqPartialMergeKMeans(
            k=5, max_k=16, lam=50.0, n_chunks=4, seed=0
        ).fit(blobs_6d)
        assert np.mean(harsh.effective_ks) <= np.mean(gentle.effective_ks)

    def test_quality_comparable_to_fixed_k(self, blobs_6d):
        from repro.core.pipeline import PartialMergeKMeans

        adaptive = EcvqPartialMergeKMeans(
            k=5, lam=0.2, n_chunks=4, seed=0
        ).fit(blobs_6d)
        fixed = PartialMergeKMeans(
            k=5, restarts=3, n_chunks=4, seed=0
        ).fit(blobs_6d)
        assert adaptive.model.mse < fixed.model.mse * 4 + 1.0

    def test_fit_chunks_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one chunk"):
            EcvqPartialMergeKMeans(k=3).fit_chunks([])

    def test_validation(self):
        with pytest.raises(ValueError, match="k must"):
            EcvqPartialMergeKMeans(k=0)
        with pytest.raises(ValueError, match="max_k"):
            EcvqPartialMergeKMeans(k=5, max_k=3)

    def test_deterministic(self, blobs_6d):
        a = EcvqPartialMergeKMeans(k=5, lam=0.5, n_chunks=3, seed=7).fit(blobs_6d)
        b = EcvqPartialMergeKMeans(k=5, lam=0.5, n_chunks=3, seed=7).fit(blobs_6d)
        np.testing.assert_array_equal(a.model.centroids, b.model.centroids)
