"""Unit tests for the compression application (codebook + histogram)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.serial import SerialKMeans
from repro.compression.codebook import Codebook
from repro.compression.histogram import HistogramBucket, MultivariateHistogram
from repro.compression.metrics import (
    moment_preservation_error,
    random_query_boxes,
    range_query_relative_errors,
)


@pytest.fixture
def model(blobs_2d):
    return SerialKMeans(k=4, restarts=3, seed=0).fit(blobs_2d)


class TestCodebook:
    def test_encode_decode_roundtrip_shape(self, blobs_2d, model):
        codebook = Codebook.from_model(model)
        indices = codebook.encode(blobs_2d)
        decoded = codebook.decode(indices)
        assert indices.shape == (blobs_2d.shape[0],)
        assert decoded.shape == blobs_2d.shape

    def test_encode_picks_nearest(self, model):
        codebook = Codebook.from_model(model)
        for index, centroid in enumerate(codebook.centroids):
            assert codebook.encode(centroid.reshape(1, -1))[0] == index

    def test_bits_per_point(self):
        assert Codebook(np.random.rand(2, 3)).bits_per_point == 1
        assert Codebook(np.random.rand(40, 3)).bits_per_point == 6
        assert Codebook(np.random.rand(64, 3)).bits_per_point == 6
        assert Codebook(np.random.rand(65, 3)).bits_per_point == 7

    def test_distortion_matches_mse(self, blobs_2d, model):
        from repro.core.quality import mse

        codebook = Codebook.from_model(model)
        assert codebook.distortion(blobs_2d) == pytest.approx(
            mse(blobs_2d, model.centroids)
        )

    def test_compression_ratio_sane(self, model):
        codebook = Codebook.from_model(model)
        ratio = codebook.compression_ratio(100_000)
        assert ratio > 10.0  # 2 dims float64 vs ~2 bits/pt

    def test_decode_rejects_out_of_range(self, model):
        codebook = Codebook.from_model(model)
        with pytest.raises(ValueError, match="out of codebook range"):
            codebook.decode(np.array([99]))

    def test_encode_rejects_dim_mismatch(self, model):
        codebook = Codebook.from_model(model)
        with pytest.raises(ValueError, match="dimension"):
            codebook.encode(np.ones((3, 5)))


class TestHistogramBucket:
    def test_volume(self):
        bucket = HistogramBucket(
            centroid=np.array([0.5, 0.5]),
            count=10.0,
            lower=np.array([0.0, 0.0]),
            upper=np.array([1.0, 2.0]),
        )
        assert bucket.volume == pytest.approx(2.0)

    def test_overlap_full_containment(self):
        bucket = HistogramBucket(
            centroid=np.array([0.5]),
            count=10.0,
            lower=np.array([0.0]),
            upper=np.array([1.0]),
        )
        assert bucket.overlap_fraction(
            np.array([-1.0]), np.array([2.0])
        ) == pytest.approx(1.0)

    def test_overlap_half(self):
        bucket = HistogramBucket(
            centroid=np.array([0.5]),
            count=10.0,
            lower=np.array([0.0]),
            upper=np.array([1.0]),
        )
        assert bucket.overlap_fraction(
            np.array([0.5]), np.array([5.0])
        ) == pytest.approx(0.5)

    def test_overlap_disjoint(self):
        bucket = HistogramBucket(
            centroid=np.array([0.5]),
            count=10.0,
            lower=np.array([0.0]),
            upper=np.array([1.0]),
        )
        assert bucket.overlap_fraction(np.array([5.0]), np.array([6.0])) == 0.0

    def test_degenerate_axis_inside(self):
        bucket = HistogramBucket(
            centroid=np.array([1.0, 0.5]),
            count=5.0,
            lower=np.array([1.0, 0.0]),
            upper=np.array([1.0, 1.0]),  # zero extent on axis 0
        )
        assert bucket.overlap_fraction(
            np.array([0.0, 0.0]), np.array([2.0, 1.0])
        ) == pytest.approx(1.0)
        assert bucket.overlap_fraction(
            np.array([2.0, 0.0]), np.array([3.0, 1.0])
        ) == 0.0


class TestMultivariateHistogram:
    def test_buckets_cover_all_points(self, blobs_2d, model):
        histogram = MultivariateHistogram.from_model(blobs_2d, model)
        assert histogram.total_count == pytest.approx(blobs_2d.shape[0])

    def test_whole_domain_query_counts_everything(self, blobs_2d, model):
        histogram = MultivariateHistogram.from_model(blobs_2d, model)
        lo = blobs_2d.min(axis=0) - 1.0
        hi = blobs_2d.max(axis=0) + 1.0
        assert histogram.estimate_count(lo, hi) == pytest.approx(
            blobs_2d.shape[0], rel=1e-9
        )

    def test_empty_region_estimates_near_zero(self, blobs_2d, model):
        histogram = MultivariateHistogram.from_model(blobs_2d, model)
        estimate = histogram.estimate_count(
            np.array([100.0, 100.0]), np.array([110.0, 110.0])
        )
        assert estimate == pytest.approx(0.0, abs=1e-9)

    def test_query_box_validation(self, blobs_2d, model):
        histogram = MultivariateHistogram.from_model(blobs_2d, model)
        with pytest.raises(ValueError, match="shape"):
            histogram.estimate_count(np.zeros(3), np.ones(3))
        with pytest.raises(ValueError, match="upper < lower"):
            histogram.estimate_count(np.ones(2), np.zeros(2))

    def test_reconstruct_shapes(self, blobs_2d, model):
        histogram = MultivariateHistogram.from_model(blobs_2d, model)
        centroids, counts = histogram.reconstruct()
        assert centroids.shape[0] == counts.shape[0] == len(histogram.buckets)

    def test_compression_ratio(self, blobs_2d, model):
        histogram = MultivariateHistogram.from_model(blobs_2d, model)
        assert histogram.compression_ratio(100_000) > 100.0
        with pytest.raises(ValueError, match="n_points"):
            histogram.compression_ratio(0)


class TestCompressionMetrics:
    def test_moment_preservation_perfect_for_exact_model(self, blobs_2d, model):
        histogram = MultivariateHistogram.from_model(blobs_2d, model)
        centroids, counts = histogram.reconstruct()
        errors = moment_preservation_error(blobs_2d, centroids, counts)
        # Cluster means weighted by counts reproduce the mean exactly.
        assert errors["mean_relative_error"] < 1e-9
        assert errors["second_moment_relative_error"] < 0.2

    def test_random_query_boxes_shape(self, blobs_2d, rng):
        boxes = random_query_boxes(blobs_2d, 10, rng)
        assert len(boxes) == 10
        for lo, hi in boxes:
            assert (hi >= lo).all()

    def test_range_query_errors_bounded_on_blobs(self, blobs_2d, model, rng):
        histogram = MultivariateHistogram.from_model(blobs_2d, model)
        boxes = random_query_boxes(blobs_2d, 20, rng, relative_extent=0.5)
        errors = range_query_relative_errors(blobs_2d, histogram, boxes)
        assert errors.shape == (20,)
        assert np.median(errors) < 1.0

    def test_counts_alignment_checked(self, blobs_2d):
        with pytest.raises(ValueError, match="align"):
            moment_preservation_error(
                blobs_2d, np.ones((3, 2)), np.ones(2)
            )


class TestMarginalsAndQuantiles:
    @pytest.fixture
    def histogram(self, blobs_2d, model):
        return MultivariateHistogram.from_model(blobs_2d, model)

    def test_marginal_mass_conserved(self, blobs_2d, histogram):
        __, counts = histogram.marginal(0, n_bins=16)
        assert counts.sum() == pytest.approx(blobs_2d.shape[0], rel=1e-9)

    def test_marginal_tracks_data_density(self, blobs_2d, histogram):
        """Bins around the two blob columns (x ~ 0 and x ~ 10) must carry
        far more mass than the empty middle."""
        edges, counts = histogram.marginal(0, n_bins=20)
        centers = (edges[:-1] + edges[1:]) / 2
        near_blobs = counts[(np.abs(centers) < 2) | (np.abs(centers - 10) < 2)]
        middle = counts[(centers > 3) & (centers < 7)]
        assert near_blobs.sum() > 10 * max(middle.sum(), 1e-9)

    def test_marginal_validation(self, histogram):
        with pytest.raises(ValueError, match="axis"):
            histogram.marginal(9)
        with pytest.raises(ValueError, match="n_bins"):
            histogram.marginal(0, n_bins=0)

    def test_quantile_monotone(self, histogram):
        q25 = histogram.quantile(0, 0.25)
        q50 = histogram.quantile(0, 0.50)
        q75 = histogram.quantile(0, 0.75)
        assert q25 <= q50 <= q75

    def test_quantile_close_to_raw_on_unimodal_data(self, rng):
        """On unimodal data (where quantiles are well defined) histogram
        quantiles approximate the raw ones.  Bimodal data is excluded:
        the median of a two-mode set lies in the empty gap, where any
        answer between the modes is equally valid."""
        points = rng.normal(loc=5.0, scale=1.0, size=(500, 2))
        unimodal_model = SerialKMeans(k=6, restarts=3, seed=0).fit(points)
        histogram = MultivariateHistogram.from_model(points, unimodal_model)
        for q in (0.25, 0.5, 0.75):
            approx = histogram.quantile(0, q)
            exact = float(np.quantile(points[:, 0], q))
            assert abs(approx - exact) < 0.5

    def test_quantile_extremes(self, blobs_2d, histogram):
        assert histogram.quantile(0, 0.0) <= blobs_2d[:, 0].min() + 1.0
        assert histogram.quantile(0, 1.0) >= blobs_2d[:, 0].max() - 1.0

    def test_quantile_validation(self, histogram):
        with pytest.raises(ValueError, match="q must"):
            histogram.quantile(0, 1.5)


class TestSamplingBaseline:
    def test_sample_compress_shape(self, blobs_2d, rng):
        from repro.compression.sampling import sample_compress

        model = sample_compress(blobs_2d, 10, rng)
        assert model.method == "random-sample"
        assert model.k == 10
        assert model.weights.sum() == pytest.approx(blobs_2d.shape[0])

    def test_sample_clamped_to_n(self, rng):
        from repro.compression.sampling import sample_compress

        points = np.random.default_rng(0).normal(size=(5, 2))
        model = sample_compress(points, 40, rng)
        assert model.k == 5

    def test_sample_rejects_bad_k(self, blobs_2d, rng):
        from repro.compression.sampling import sample_compress

        with pytest.raises(ValueError, match="k must"):
            sample_compress(blobs_2d, 0, rng)

    def test_sampled_points_are_data_rows(self, blobs_2d, rng):
        from repro.compression.sampling import sample_compress

        model = sample_compress(blobs_2d, 8, rng)
        for row in model.centroids:
            assert any(np.allclose(row, p) for p in blobs_2d)

    def test_clustering_beats_sampling_on_distortion(self, blobs_2d, rng):
        from repro.compression.sampling import sample_compress
        from repro.core.quality import mse

        sampled = sample_compress(blobs_2d, 4, rng)
        clustered = SerialKMeans(k=4, restarts=3, seed=0).fit(blobs_2d)
        assert mse(blobs_2d, clustered.centroids) <= sampled.mse
