"""Tests for the CLARANS and CURE baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.clarans import Clarans
from repro.baselines.cure import Cure


class TestClarans:
    def test_model_structure(self, blobs_2d):
        model = Clarans(k=4, numlocal=1, maxneighbor=60, seed=0).fit(blobs_2d)
        assert model.method == "clarans"
        assert model.k <= 4
        assert model.weights.sum() == pytest.approx(blobs_2d.shape[0])
        assert model.extra["swaps_tried"] >= 1

    def test_medoids_are_data_points(self, blobs_2d):
        model = Clarans(k=4, numlocal=1, maxneighbor=40, seed=0).fit(blobs_2d)
        for medoid in model.centroids:
            assert any(np.allclose(medoid, p) for p in blobs_2d)

    def test_finds_blob_structure(self, blobs_2d, blob_centers_2d):
        model = Clarans(k=4, numlocal=2, maxneighbor=120, seed=1).fit(blobs_2d)
        found = sum(
            np.min(((model.centroids - c) ** 2).sum(axis=1)) < 1.0
            for c in blob_centers_2d
        )
        assert found >= 3

    def test_more_search_never_worse_cost(self, blobs_6d):
        little = Clarans(k=5, numlocal=1, maxneighbor=10, seed=3).fit(blobs_6d)
        lots = Clarans(k=5, numlocal=3, maxneighbor=150, seed=3).fit(blobs_6d)
        assert lots.extra["medoid_cost"] <= little.extra["medoid_cost"] * 1.2

    def test_k_clamped(self):
        points = np.random.default_rng(0).normal(size=(3, 2))
        model = Clarans(k=10, numlocal=1, maxneighbor=5, seed=0).fit(points)
        assert model.k <= 3

    def test_validation(self):
        with pytest.raises(ValueError, match="k must"):
            Clarans(k=0)
        with pytest.raises(ValueError, match="numlocal"):
            Clarans(k=3, numlocal=0)
        with pytest.raises(ValueError, match="maxneighbor"):
            Clarans(k=3, maxneighbor=0)

    def test_deterministic(self, blobs_2d):
        a = Clarans(k=4, numlocal=1, maxneighbor=30, seed=7).fit(blobs_2d)
        b = Clarans(k=4, numlocal=1, maxneighbor=30, seed=7).fit(blobs_2d)
        np.testing.assert_array_equal(a.centroids, b.centroids)


class TestCure:
    def test_model_structure(self, blobs_2d):
        model = Cure(k=4, sample_size=80, seed=0).fit(blobs_2d)
        assert model.method == "cure"
        assert model.k <= 4
        assert model.weights.sum() == pytest.approx(blobs_2d.shape[0])

    def test_finds_blob_structure(self, blobs_2d, blob_centers_2d):
        model = Cure(k=4, sample_size=100, seed=1).fit(blobs_2d)
        found = sum(
            np.min(((model.centroids - c) ** 2).sum(axis=1)) < 1.0
            for c in blob_centers_2d
        )
        assert found == 4  # CURE excels on well-separated blobs

    def test_elongated_clusters(self, rng):
        """CURE's scattered representatives capture non-spherical shape."""
        line_a = np.column_stack(
            [np.linspace(0, 10, 150), rng.normal(0, 0.1, 150)]
        )
        line_b = np.column_stack(
            [np.linspace(0, 10, 150), rng.normal(5, 0.1, 150)]
        )
        data = np.vstack([line_a, line_b])
        model = Cure(
            k=2, n_representatives=8, shrink=0.2, sample_size=120, seed=0
        ).fit(data)
        # Two clusters, split by the y coordinate, roughly equal mass.
        assert model.k == 2
        assert min(model.weights) > 100

    def test_sample_smaller_than_data(self, blobs_6d):
        model = Cure(k=5, sample_size=60, seed=0).fit(blobs_6d)
        assert model.extra["sample_size"] == 60
        assert model.weights.sum() == pytest.approx(blobs_6d.shape[0])

    def test_validation(self):
        with pytest.raises(ValueError, match="k must"):
            Cure(k=0)
        with pytest.raises(ValueError, match="shrink"):
            Cure(k=3, shrink=1.5)
        with pytest.raises(ValueError, match="n_representatives"):
            Cure(k=3, n_representatives=0)
        with pytest.raises(ValueError, match="sample_size"):
            Cure(k=3, sample_size=1)

    def test_deterministic(self, blobs_2d):
        a = Cure(k=4, sample_size=60, seed=5).fit(blobs_2d)
        b = Cure(k=4, sample_size=60, seed=5).fit(blobs_2d)
        np.testing.assert_array_equal(a.centroids, b.centroids)
