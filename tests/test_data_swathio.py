"""Tests for the semi-structured swath granule format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.swath import SwathSimulator, SwathStripe
from repro.data.swathio import (
    SwathFileError,
    bin_granules_into_buckets,
    read_swath_stripes,
    scan_granules,
    swath_directory,
    write_granules,
    write_swath_file,
)


@pytest.fixture
def stripes() -> list[SwathStripe]:
    simulator = SwathSimulator(
        footprints_per_orbit=60, samples_per_footprint=2, seed=3
    )
    return list(simulator.fly(5))


class TestSingleGranule:
    def test_roundtrip(self, tmp_path, stripes):
        path = write_swath_file(tmp_path / "g.swf", stripes[:2])
        loaded = list(read_swath_stripes(path))
        assert len(loaded) == 2
        for original, restored in zip(stripes[:2], loaded):
            assert restored.orbit == original.orbit
            np.testing.assert_array_equal(restored.lats, original.lats)
            np.testing.assert_array_equal(restored.lons, original.lons)
            np.testing.assert_array_equal(
                restored.measurements, original.measurements
            )

    def test_directory_listing(self, tmp_path, stripes):
        path = write_swath_file(tmp_path / "g.swf", stripes[:3])
        entries = swath_directory(path)
        assert [orbit for orbit, __ in entries] == [s.orbit for s in stripes[:3]]
        assert all(n == stripes[0].measurements.shape[0] for __, n in entries)

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError, match="empty swath"):
            write_swath_file(tmp_path / "g.swf", [])

    def test_rejects_mixed_dims(self, tmp_path, stripes):
        bad = SwathStripe(
            orbit=99,
            lats=np.zeros(2),
            lons=np.zeros(2),
            measurements=np.zeros((2, 3)),
        )
        with pytest.raises(ValueError, match="mixed"):
            write_swath_file(tmp_path / "g.swf", [stripes[0], bad])

    def test_bad_magic_detected(self, tmp_path, stripes):
        path = write_swath_file(tmp_path / "g.swf", stripes[:1])
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(bytes(raw))
        with pytest.raises(SwathFileError, match="magic"):
            list(read_swath_stripes(path))
        with pytest.raises(SwathFileError, match="magic"):
            swath_directory(path)

    def test_truncation_detected(self, tmp_path, stripes):
        path = write_swath_file(tmp_path / "g.swf", stripes[:2])
        raw = path.read_bytes()
        path.write_bytes(raw[:-100])
        with pytest.raises(SwathFileError, match="truncated"):
            list(read_swath_stripes(path))


class TestGranuleCollections:
    def test_write_granules_splits_stream(self, tmp_path, stripes):
        paths = write_granules(tmp_path / "g", stripes, stripes_per_granule=2)
        assert len(paths) == 3  # 5 stripes -> 2 + 2 + 1
        assert len(swath_directory(paths[0])) == 2
        assert len(swath_directory(paths[-1])) == 1

    def test_scan_granules_roundtrips_everything(self, tmp_path, stripes):
        write_granules(tmp_path / "g", stripes, stripes_per_granule=2)
        loaded = list(scan_granules(tmp_path / "g"))
        assert len(loaded) == len(stripes)
        total_original = sum(s.measurements.shape[0] for s in stripes)
        total_loaded = sum(s.measurements.shape[0] for s in loaded)
        assert total_loaded == total_original

    def test_bin_granules_matches_direct_binning(self, tmp_path, stripes):
        from repro.data.swath import bin_stripes_into_buckets

        write_granules(tmp_path / "g", stripes, stripes_per_granule=2)
        from_disk = bin_granules_into_buckets(tmp_path / "g")
        direct = bin_stripes_into_buckets(stripes)
        assert set(from_disk) == set(direct)
        for cell_id in direct:
            assert from_disk[cell_id].n_points == direct[cell_id].n_points

    def test_cells_span_multiple_granules(self, tmp_path):
        """The paper's premise: one cell's points live in several files."""
        simulator = SwathSimulator(
            footprints_per_orbit=40, samples_per_footprint=2, seed=7,
            orbit_minutes=0.1,  # nearly no drift: orbits overlap in longitude
        )
        stripes = list(simulator.fly(4))
        paths = write_granules(tmp_path / "g", stripes, stripes_per_granule=1)
        assert len(paths) == 4
        per_file_cells = []
        for path in paths:
            from repro.data.swath import bin_stripes_into_buckets

            cells = set(bin_stripes_into_buckets(read_swath_stripes(path)))
            per_file_cells.append(cells)
        shared = per_file_cells[0] & per_file_cells[1]
        assert shared, "overlapping orbits must revisit cells across files"

    def test_rejects_bad_stripes_per_granule(self, tmp_path, stripes):
        with pytest.raises(ValueError, match="stripes_per_granule"):
            write_granules(tmp_path / "g", stripes, stripes_per_granule=0)
