"""Unit tests for the serial k-means baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.serial import SerialKMeans


class TestSerialKMeans:
    def test_model_fields(self, blobs_2d):
        model = SerialKMeans(k=4, restarts=3, seed=0).fit(blobs_2d)
        assert model.method == "serial"
        assert model.partitions == 1
        assert model.restarts == 3
        assert model.total_seconds > 0.0
        assert model.weights.sum() == pytest.approx(blobs_2d.shape[0])

    def test_finds_blobs(self, blobs_2d, blob_centers_2d):
        model = SerialKMeans(k=4, restarts=5, seed=0).fit(blobs_2d)
        for center in blob_centers_2d:
            nearest = np.min(((model.centroids - center) ** 2).sum(axis=1))
            assert nearest < 0.5

    def test_extra_diagnostics(self, blobs_2d):
        model = SerialKMeans(k=4, restarts=4, seed=0).fit(blobs_2d)
        assert len(model.extra["restart_mses"]) == 4
        assert len(model.extra["iterations"]) == 4
        assert model.extra["restart_mses"][model.extra["best_restart"]] == (
            pytest.approx(min(model.extra["restart_mses"]))
        )

    def test_deterministic(self, blobs_6d):
        a = SerialKMeans(k=5, restarts=2, seed=3).fit(blobs_6d)
        b = SerialKMeans(k=5, restarts=2, seed=3).fit(blobs_6d)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            SerialKMeans(k=0)

    def test_mse_is_min_over_restarts(self, blobs_2d):
        model = SerialKMeans(k=4, restarts=6, seed=1).fit(blobs_2d)
        assert model.mse == pytest.approx(min(model.extra["restart_mses"]))
