"""Chaos-engine tests: deterministic fault injection at every operator role."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.errors import ExecutionError, InjectedFault
from repro.stream.executor import Executor
from repro.stream.faults import ChaosTransform, FaultPlan, FaultSpec
from repro.stream.graph import DataflowGraph
from repro.stream.kmeans_ops import run_partial_merge_stream
from repro.stream.operators import FunctionTransform, Sink, Source
from repro.stream.planner import Planner
from repro.stream.scheduler import ResourceManager
from tests.conftest import make_blobs


class RangeSource(Source):
    def __init__(self, n: int, name: str = "src"):
        super().__init__(name)
        self.n = n

    def generate(self):
        yield from range(self.n)


class CollectSink(Sink):
    def __init__(self, name: str = "sink"):
        super().__init__(name)
        self.items = []

    def consume(self, item):
        self.items.append(item)

    def result(self):
        return self.items


def build_graph(n_items: int = 20):
    graph = DataflowGraph()
    source = RangeSource(n_items)
    double = FunctionTransform("double", lambda i: [2 * i])
    sink = CollectSink()
    graph.add(source)
    graph.add(double)
    graph.add(sink)
    graph.connect("src", "double")
    graph.connect("double", "sink")
    return graph


def run(graph, fault_plan=None):
    plan = Planner(ResourceManager(worker_slots=3)).plan(
        graph, clone_overrides={"double": 1}, fault_plan=fault_plan
    )
    return Executor().run(plan)


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(target="x", kind="explode", at_index=0)

    def test_needs_a_trigger(self):
        with pytest.raises(ValueError, match="at_index or probability"):
            FaultSpec(target="x", kind="crash")

    def test_probability_range(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(target="x", kind="crash", probability=1.5)

    def test_budget_defaults(self):
        crash = FaultSpec(target="x", kind="crash", at_index=0)
        delay = FaultSpec(target="x", kind="delay", at_index=0)
        assert crash.budget == 1
        assert delay.budget is None


class TestWrapping:
    def test_untargeted_operator_not_wrapped(self):
        plan = FaultPlan([FaultSpec(target="other", kind="crash", at_index=0)])
        op = FunctionTransform("double", lambda i: [i])
        assert plan.wrap(op, "double") is op

    def test_targeted_transform_wrapped_and_delegating(self):
        plan = FaultPlan([FaultSpec(target="double", kind="delay",
                                    at_index=0, delay_seconds=0.0)])
        inner = FunctionTransform("double", lambda i: [2 * i])
        wrapped = plan.wrap(inner, "double")
        assert isinstance(wrapped, ChaosTransform)
        assert wrapped.name == "double"
        assert wrapped.parallelizable == inner.parallelizable
        assert wrapped.max_retries == inner.max_retries
        assert list(wrapped.process(3)) == [6]

    def test_logical_name_matches_every_clone(self):
        plan = FaultPlan(
            [FaultSpec(target="double", kind="delay", at_index=0)]
        )
        inner = FunctionTransform("double", lambda i: [i])
        assert isinstance(plan.wrap(inner, "double#0"), ChaosTransform)
        assert isinstance(plan.wrap(inner, "double#1"), ChaosTransform)


class TestInjection:
    def test_transform_crash_fails_plan_with_injected_cause(self):
        fp = FaultPlan([FaultSpec(target="double", kind="crash", at_index=3)])
        with pytest.raises(ExecutionError) as excinfo:
            run(build_graph(), fault_plan=fp)
        cause = excinfo.value.failures[0].__cause__
        assert isinstance(cause, InjectedFault)
        assert cause.target == "double"
        assert cause.item_index == 3

    def test_source_crash_fails_plan(self):
        fp = FaultPlan([FaultSpec(target="src", kind="crash", at_index=5)])
        with pytest.raises(ExecutionError) as excinfo:
            run(build_graph(), fault_plan=fp)
        assert any("src" in f.operator_name for f in excinfo.value.failures)

    def test_sink_crash_fails_plan(self):
        fp = FaultPlan([FaultSpec(target="sink", kind="crash", at_index=2)])
        with pytest.raises(ExecutionError) as excinfo:
            run(build_graph(), fault_plan=fp)
        assert any("sink" in f.operator_name for f in excinfo.value.failures)

    def test_source_truncation_ends_stream_early(self):
        fp = FaultPlan([FaultSpec(target="src", kind="truncate", at_index=7)])
        outcome = run(build_graph(20), fault_plan=fp)
        # Items 0..6 survive; the rest of the stream is lost.
        assert outcome.value == [2 * i for i in range(7)]
        assert outcome.metrics.injected_faults == 1
        assert fp.trace()[0].kind == "truncate"

    def test_delay_fault_preserves_results(self):
        fp = FaultPlan(
            [FaultSpec(target="double", kind="delay",
                       probability=0.5, delay_seconds=0.0)],
            seed=7,
        )
        outcome = run(build_graph(20), fault_plan=fp)
        assert outcome.value == [2 * i for i in range(20)]
        assert outcome.metrics.injected_faults == len(fp.trace())
        assert outcome.metrics.injected_faults > 0

    def test_crash_budget_is_one_shot(self):
        # probability 1 would crash every item, but the default crash
        # budget injects exactly once.
        fp = FaultPlan([FaultSpec(target="double", kind="crash",
                                  probability=1.0)])
        with pytest.raises(ExecutionError):
            run(build_graph(), fault_plan=fp)
        assert len(fp.trace()) == 1


class TestDeterminism:
    def make_plan(self, seed=11):
        return FaultPlan(
            [
                FaultSpec(target="double", kind="delay",
                          probability=0.3, delay_seconds=0.0),
                FaultSpec(target="src", kind="delay",
                          probability=0.2, delay_seconds=0.0),
            ],
            seed=seed,
        )

    def test_identical_plans_produce_identical_traces(self):
        fp_a, fp_b = self.make_plan(), self.make_plan()
        run(build_graph(40), fault_plan=fp_a)
        run(build_graph(40), fault_plan=fp_b)
        assert fp_a.trace() == fp_b.trace()
        assert len(fp_a.trace()) > 0

    def test_reset_allows_exact_replay(self):
        fp = self.make_plan()
        run(build_graph(40), fault_plan=fp)
        first = fp.trace()
        fp.reset()
        assert fp.trace() == ()
        run(build_graph(40), fault_plan=fp)
        assert fp.trace() == first

    def test_different_seed_changes_decisions(self):
        fp_a, fp_b = self.make_plan(seed=1), self.make_plan(seed=2)
        run(build_graph(60), fault_plan=fp_a)
        run(build_graph(60), fault_plan=fp_b)
        assert fp_a.trace() != fp_b.trace()


class TestKMeansPipelineUnderChaos:
    @pytest.fixture
    def cells(self):
        centers = np.array([[0.0, 0.0], [9.0, 9.0], [0.0, 9.0]])
        return {
            "cellA": make_blobs(60, centers, scale=0.3, seed=5),
            "cellB": make_blobs(50, centers, scale=0.3, seed=6),
        }

    def test_injected_fault_counter_on_metrics(self, cells):
        fp = FaultPlan(
            [FaultSpec(target="partial", kind="delay",
                       probability=1.0, delay_seconds=0.0)]
        )
        models, outcome = run_partial_merge_stream(
            cells, k=3, restarts=1, n_chunks=3, seed=0,
            partial_clones=1, max_iter=30, fault_plan=fp,
        )
        assert set(models) == set(cells)
        # One delay per chunk: 2 cells x 3 chunks.
        assert outcome.metrics.injected_faults == 6

    def test_truncated_scan_still_yields_models(self, cells):
        # Lose the tail of the scan: cellB keeps fewer partitions but the
        # merge still produces a model per cell seen so far.
        fp = FaultPlan([FaultSpec(target="scan", kind="truncate", at_index=4)])
        models, outcome = run_partial_merge_stream(
            cells, k=3, restarts=1, n_chunks=3, seed=0,
            partial_clones=1, max_iter=30, fault_plan=fp,
        )
        assert "cellA" in models
        assert models["cellA"].partitions == 3
        assert outcome.metrics.injected_faults == 1
