"""Tests for the global summary and histogram serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.serial import SerialKMeans
from repro.compression.global_summary import GlobalSummary, Region
from repro.compression.histogram import MultivariateHistogram
from repro.compression.serialization import (
    HistogramFormatError,
    read_histogram_file,
    read_summary_dir,
    write_histogram_file,
    write_summary_dir,
)
from repro.data.generator import generate_cell_points
from repro.data.gridcell import GridCellId


def _histogram(points: np.ndarray, k: int = 6) -> MultivariateHistogram:
    model = SerialKMeans(k=k, restarts=2, seed=0).fit(points)
    return MultivariateHistogram.from_model(points, model)


@pytest.fixture
def summary() -> tuple[GlobalSummary, dict[GridCellId, np.ndarray]]:
    cells = {
        GridCellId(10, 20): generate_cell_points(400, seed=1),
        GridCellId(11, 20): generate_cell_points(300, seed=2),
        GridCellId(-5, 100): generate_cell_points(200, seed=3),
    }
    built = GlobalSummary(dim=6)
    for cell_id, points in cells.items():
        built.add_cell(cell_id, _histogram(points))
    return built, cells


class TestRegion:
    def test_contains_cell(self):
        region = Region(9.5, 12.0, 19.0, 21.0)
        assert region.contains_cell(GridCellId(10, 20))
        assert not region.contains_cell(GridCellId(-5, 100))

    def test_globe_contains_everything(self):
        globe = Region.globe()
        assert globe.contains_cell(GridCellId(-90, -180))
        assert globe.contains_cell(GridCellId(89, 179))

    def test_validation(self):
        with pytest.raises(ValueError, match="lat_min"):
            Region(10, 5, 0, 1)
        with pytest.raises(ValueError, match="lon_min"):
            Region(0, 1, 10, 5)


class TestGlobalSummary:
    def test_counts(self, summary):
        built, cells = summary
        assert len(built) == 3
        assert built.total_count() == pytest.approx(900)

    def test_regional_count(self, summary):
        built, cells = summary
        region = Region(9.0, 12.0, 19.0, 21.0)
        assert built.total_count(region) == pytest.approx(700)
        assert built.cells_in(region) == [GridCellId(10, 20), GridCellId(11, 20)]

    def test_global_mean_exact(self, summary):
        """Count-weighted centroid mean reproduces the true global mean."""
        built, cells = summary
        raw = np.vstack(list(cells.values()))
        np.testing.assert_allclose(built.mean(), raw.mean(axis=0), rtol=1e-9)

    def test_regional_mean(self, summary):
        built, cells = summary
        region = Region(-6.0, -4.0, 99.0, 101.0)
        raw = cells[GridCellId(-5, 100)]
        np.testing.assert_allclose(
            built.mean(region), raw.mean(axis=0), rtol=1e-9
        )

    def test_mean_empty_region_raises(self, summary):
        built, __ = summary
        with pytest.raises(ValueError, match="no cells"):
            built.mean(Region(80, 85, 0, 1))

    def test_estimate_count_whole_domain(self, summary):
        built, cells = summary
        raw = np.vstack(list(cells.values()))
        lo = raw.min(axis=0) - 1
        hi = raw.max(axis=0) + 1
        assert built.estimate_count(lo, hi) == pytest.approx(900, rel=1e-9)

    def test_coverage_grid(self, summary):
        built, __ = summary
        grid = built.coverage_grid("count")
        assert grid.shape == (180, 360)
        assert grid[10 + 90, 20 + 180] == pytest.approx(400)
        assert grid.sum() == pytest.approx(900)
        with pytest.raises(ValueError, match="unknown statistic"):
            built.coverage_grid("variance")

    def test_compression_ratio(self, summary):
        built, __ = summary
        assert built.compression_ratio() > 1.0

    def test_dim_mismatch_rejected(self):
        built = GlobalSummary(dim=4)
        histogram = _histogram(generate_cell_points(100, seed=0))
        with pytest.raises(ValueError, match="dim"):
            built.add_cell(GridCellId(0, 0), histogram)


class TestSerialization:
    def test_roundtrip_single_file(self, tmp_path):
        points = generate_cell_points(300, seed=5)
        histogram = _histogram(points)
        cell_id = GridCellId(-33, 151)
        path = write_histogram_file(tmp_path / "cell.mvh", cell_id, histogram)
        loaded_id, loaded = read_histogram_file(path)
        assert loaded_id == cell_id
        assert len(loaded.buckets) == len(histogram.buckets)
        for original, restored in zip(histogram.buckets, loaded.buckets):
            np.testing.assert_array_equal(restored.centroid, original.centroid)
            assert restored.count == original.count
            np.testing.assert_array_equal(restored.lower, original.lower)
            np.testing.assert_array_equal(restored.upper, original.upper)

    def test_roundtrip_summary_dir(self, tmp_path, summary):
        built, __ = summary
        paths = write_summary_dir(tmp_path / "mvh", built)
        assert len(paths) == 3
        loaded = read_summary_dir(tmp_path / "mvh", dim=6)
        assert len(loaded) == 3
        assert loaded.total_count() == pytest.approx(built.total_count())
        np.testing.assert_allclose(loaded.mean(), built.mean())

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.mvh"
        path.write_bytes(b"XXXX" + b"\x00" * 32)
        with pytest.raises(HistogramFormatError, match="magic"):
            read_histogram_file(path)

    def test_truncated_payload(self, tmp_path):
        points = generate_cell_points(200, seed=6)
        path = write_histogram_file(
            tmp_path / "cell.mvh", GridCellId(0, 0), _histogram(points)
        )
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(HistogramFormatError, match="payload"):
            read_histogram_file(path)

    def test_queries_survive_roundtrip(self, tmp_path):
        points = generate_cell_points(500, seed=7)
        histogram = _histogram(points, k=8)
        path = write_histogram_file(
            tmp_path / "cell.mvh", GridCellId(0, 0), histogram
        )
        __, loaded = read_histogram_file(path)
        lo = points.min(axis=0)
        hi = points.mean(axis=0)
        assert loaded.estimate_count(lo, hi) == pytest.approx(
            histogram.estimate_count(lo, hi)
        )
