"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


def make_blobs(
    n_per_blob: int,
    centers: np.ndarray,
    scale: float = 0.2,
    seed: int = 0,
) -> np.ndarray:
    """Well-separated isotropic Gaussian blobs (shuffled)."""
    generator = np.random.default_rng(seed)
    blocks = [
        generator.normal(loc=center, scale=scale, size=(n_per_blob, len(center)))
        for center in np.atleast_2d(centers)
    ]
    points = np.vstack(blocks)
    return points[generator.permutation(points.shape[0])]


@pytest.fixture
def blobs_2d() -> np.ndarray:
    """400 points in 4 well-separated 2-D blobs."""
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
    return make_blobs(100, centers, scale=0.3, seed=7)


@pytest.fixture
def blobs_6d() -> np.ndarray:
    """600 points in 5 well-separated 6-D blobs (MISR dimensionality)."""
    generator = np.random.default_rng(3)
    centers = generator.normal(scale=12.0, size=(5, 6))
    return make_blobs(120, centers, scale=0.5, seed=11)


@pytest.fixture
def blob_centers_2d() -> np.ndarray:
    """The true centers of :func:`blobs_2d`."""
    return np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
