"""Tests for the executor's hung-operator watchdog."""

from __future__ import annotations

import time

import pytest

from repro.stream.errors import ExecutionError, OperatorStalled
from repro.stream.executor import Executor
from repro.stream.graph import DataflowGraph
from repro.stream.operators import Sink, Source, Transform
from repro.stream.planner import Planner


class Numbers(Source):
    def __init__(self, n=5, name="src"):
        super().__init__(name)
        self.n = n

    def generate(self):
        yield from range(self.n)


class HangAt(Transform):
    """Sleeps forever (well past any test timeout) on one item."""

    def __init__(self, hang_on=2, name="hang"):
        super().__init__(name)
        self.hang_on = hang_on

    def process(self, item):
        if item == self.hang_on:
            time.sleep(300.0)
        yield item


class Collect(Sink):
    def __init__(self, name="collect"):
        super().__init__(name)
        self.items = []

    def consume(self, item):
        self.items.append(item)

    def result(self):
        return list(self.items)


def build_plan(transform, stall_timeout):
    graph = DataflowGraph()
    graph.add(Numbers())
    graph.add(transform)
    graph.add(Collect())
    graph.connect("src", transform.name)
    graph.connect(transform.name, "collect")
    return Planner().plan(graph, stall_timeout=stall_timeout)


class TestWatchdog:
    def test_hung_operator_fails_the_plan(self):
        plan = build_plan(HangAt(), stall_timeout=0.4)
        started = time.monotonic()
        with pytest.raises(ExecutionError) as excinfo:
            Executor().run(plan)
        elapsed = time.monotonic() - started
        # Watchdog deadline + grace, not the 300s sleep.
        assert elapsed < 30.0
        causes = [f.__cause__ for f in excinfo.value.failures]
        assert any(isinstance(cause, OperatorStalled) for cause in causes)
        stalled = next(
            c for c in causes if isinstance(c, OperatorStalled)
        )
        assert stalled.operator_name == "hang"
        assert stalled.stall_seconds >= 0.4

    def test_stall_diagnosis_on_the_exception(self):
        """The failed run's metrics (with the diagnosis) ride the error."""
        plan = build_plan(HangAt(), stall_timeout=0.4)
        with pytest.raises(ExecutionError) as excinfo:
            Executor().run(plan)
        metrics = excinfo.value.metrics
        assert metrics is not None
        assert len(metrics.stalls) == 1
        event = metrics.stalls[0]
        assert event.waited_seconds >= 0.4
        assert "hang" in event.suspects
        assert "hang" in event.policies
        assert event.queue_depths  # depths captured for every queue
        assert any(
            "sleep" in stack for stack in event.thread_stacks.values()
        )

    def test_stall_summary_and_trace_export(self):
        from repro.stream.tracing import metrics_to_dict

        plan = build_plan(HangAt(), stall_timeout=0.4)
        with pytest.raises(ExecutionError) as excinfo:
            Executor().run(plan)
        metrics = excinfo.value.metrics
        assert any("stall" in line for line in metrics.summary_lines())
        payload = metrics_to_dict(metrics)
        assert payload["stalls"][0]["suspects"] == ["hang"]

    def test_healthy_pipeline_passes_with_watchdog_armed(self):
        class Passthrough(Transform):
            def process(self, item):
                yield item

        graph = DataflowGraph()
        graph.add(Numbers())
        graph.add(Passthrough("pass"))
        graph.add(Collect())
        graph.connect("src", "pass")
        graph.connect("pass", "collect")
        plan = Planner().plan(graph, stall_timeout=5.0)
        outcome = Executor().run(plan)
        assert outcome.value == [0, 1, 2, 3, 4]
        assert outcome.metrics.stalls == []

    def test_watchdog_off_by_default(self):
        class Passthrough(Transform):
            def process(self, item):
                yield item

        graph = DataflowGraph()
        graph.add(Numbers())
        graph.add(Passthrough("pass"))
        graph.add(Collect())
        graph.connect("src", "pass")
        graph.connect("pass", "collect")
        plan = Planner().plan(graph)
        assert plan.stall_timeout is None
        outcome = Executor().run(plan)
        assert outcome.metrics.stalls == []

    def test_invalid_stall_timeout_rejected(self):
        graph = DataflowGraph()
        graph.add(Numbers())
        graph.add(Collect())
        graph.connect("src", "collect")
        with pytest.raises(ValueError, match="stall_timeout"):
            Planner().plan(graph, stall_timeout=0.0)
        with pytest.raises(ValueError, match="stall_timeout"):
            Executor(stall_timeout=-1.0)
