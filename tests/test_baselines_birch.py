"""Unit tests for the BIRCH CF-tree baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.birch import Birch, CFEntry


class TestCFEntry:
    def test_of_point(self):
        entry = CFEntry.of_point(np.array([3.0, 4.0]))
        assert entry.n == 1.0
        np.testing.assert_allclose(entry.centroid, [3.0, 4.0])
        assert entry.square_sum == pytest.approx(25.0)
        assert entry.radius == pytest.approx(0.0, abs=1e-9)

    def test_absorb_additivity(self):
        a = CFEntry.of_point(np.array([0.0, 0.0]))
        b = CFEntry.of_point(np.array([2.0, 0.0]))
        a.absorb(b)
        assert a.n == 2.0
        np.testing.assert_allclose(a.centroid, [1.0, 0.0])
        assert a.radius == pytest.approx(1.0)

    def test_merged_radius_matches_actual_absorb(self):
        a = CFEntry.of_point(np.array([0.0]))
        b = CFEntry.of_point(np.array([6.0]))
        predicted = a.merged_radius(b)
        a.absorb(b)
        assert predicted == pytest.approx(a.radius)

    def test_radius_never_negative(self):
        entry = CFEntry.of_point(np.array([1e8]))
        entry.absorb(CFEntry.of_point(np.array([1e8])))
        assert entry.radius >= 0.0


class TestBirch:
    def test_fit_returns_model(self, blobs_2d):
        model = Birch(k=4, threshold=0.5).fit(blobs_2d)
        assert model.method == "birch"
        assert model.k <= 4
        assert model.weights.sum() == pytest.approx(blobs_2d.shape[0])

    def test_finds_blob_structure(self, blobs_2d, blob_centers_2d):
        model = Birch(k=4, threshold=0.6).fit(blobs_2d)
        for center in blob_centers_2d:
            nearest = np.min(((model.centroids - center) ** 2).sum(axis=1))
            assert nearest < 1.0

    def test_small_threshold_builds_more_leaf_cfs(self, blobs_2d):
        fine = Birch(k=4, threshold=0.1).fit(blobs_2d)
        coarse = Birch(k=4, threshold=5.0).fit(blobs_2d)
        assert fine.extra["leaf_cf_count"] > coarse.extra["leaf_cf_count"]

    def test_single_pass_over_many_points_stays_compact(self, rng):
        points = rng.normal(size=(3_000, 4))
        model = Birch(k=8, threshold=1.0, leaf_entries=16, branching=8).fit(
            points
        )
        # The CF-tree must summarise, not memorise.
        assert model.extra["leaf_cf_count"] < 3_000
        assert model.weights.sum() == pytest.approx(3_000)

    def test_fewer_leaves_than_k_skips_global_step(self):
        points = np.vstack([np.zeros((10, 2)), np.ones((10, 2)) * 100])
        model = Birch(k=10, threshold=10.0).fit(points)
        assert model.k <= 2

    def test_leaf_summaries_requires_fit(self):
        with pytest.raises(ValueError, match="fit has not"):
            Birch(k=3).leaf_summaries()

    def test_validation(self):
        with pytest.raises(ValueError, match="k must"):
            Birch(k=0)
        with pytest.raises(ValueError, match="threshold"):
            Birch(k=3, threshold=0.0)
        with pytest.raises(ValueError, match="branching"):
            Birch(k=3, branching=1)

    def test_node_splits_keep_all_mass(self, rng):
        """Force many splits with tiny nodes and verify conservation."""
        points = rng.normal(scale=50.0, size=(500, 3))
        model = Birch(
            k=5, threshold=0.5, leaf_entries=3, branching=3
        ).fit(points)
        assert model.weights.sum() == pytest.approx(500)
