"""Tests for the disk-backed bucket-file scan operator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator import generate_cell_points
from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import write_bucket_dir
from repro.stream.file_source import BucketFileSource
from repro.stream.executor import Executor
from repro.stream.graph import DataflowGraph
from repro.stream.kmeans_ops import MergeKMeansSink, PartialKMeansOperator
from repro.stream.planner import Planner
from repro.stream.scheduler import ResourceManager


@pytest.fixture
def bucket_dir(tmp_path):
    cells = [
        GridCell(GridCellId(10, 20), generate_cell_points(800, seed=1)),
        GridCell(GridCellId(11, 20), generate_cell_points(300, seed=2)),
    ]
    write_bucket_dir(tmp_path, cells)
    return tmp_path, cells


class TestBucketFileSource:
    def test_emits_every_point_once(self, bucket_dir):
        directory, cells = bucket_dir
        source = BucketFileSource(directory, n_chunks=4)
        chunks = list(source.generate())
        for cell in cells:
            emitted = sum(
                c.n_points for c in chunks if c.cell_id == cell.cell_id.key
            )
            assert emitted == cell.n_points

    def test_fixed_chunk_count(self, bucket_dir):
        directory, __ = bucket_dir
        source = BucketFileSource(directory, n_chunks=4)
        by_cell: dict[str, list] = {}
        for chunk in source.generate():
            by_cell.setdefault(chunk.cell_id, []).append(chunk)
        for chunks in by_cell.values():
            assert len(chunks) == 4
            assert all(c.n_partitions == 4 for c in chunks)

    def test_memory_budget_bounds_chunks(self, bucket_dir):
        directory, __ = bucket_dir
        resources = ResourceManager(memory_budget_bytes=16 * 1024)
        source = BucketFileSource(directory, resources=resources)
        cap = resources.max_points_per_partition(6)
        for chunk in source.generate():
            assert chunk.n_points <= cap

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no .gbk"):
            BucketFileSource(tmp_path)

    def test_bad_n_chunks_rejected(self, bucket_dir):
        directory, __ = bucket_dir
        with pytest.raises(ValueError, match="n_chunks"):
            BucketFileSource(directory, n_chunks=0)

    def test_full_pipeline_from_disk(self, bucket_dir):
        """Files on disk -> scan -> partial -> merge, end to end."""
        directory, cells = bucket_dir
        graph = DataflowGraph()
        graph.add(BucketFileSource(directory, n_chunks=3))
        graph.add(
            PartialKMeansOperator(
                k=6, restarts=2, seed_sequence=np.random.SeedSequence(0)
            ),
            cost_hint=16.0,
        )
        graph.add(MergeKMeansSink(k=6))
        graph.connect("scan-files", "partial")
        graph.connect("partial", "merge")

        plan = Planner(ResourceManager(worker_slots=3)).plan(graph)
        outcome = Executor().run(plan)
        models = outcome.value
        assert set(models) == {c.cell_id.key for c in cells}
        for cell in cells:
            model = models[cell.cell_id.key]
            assert model.weights.sum() == pytest.approx(cell.n_points)
