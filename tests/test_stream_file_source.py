"""Tests for the disk-backed bucket-file scan operator."""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.data.generator import generate_cell_points
from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import GridBucketFormatError, write_bucket_dir
from repro.stream.errors import ExecutionError
from repro.stream.file_source import (
    QUARANTINE,
    QUARANTINE_DIRNAME,
    BucketFileSource,
)
from repro.stream.executor import Executor
from repro.stream.graph import DataflowGraph
from repro.stream.kmeans_ops import MergeKMeansSink, PartialKMeansOperator
from repro.stream.planner import Planner
from repro.stream.scheduler import ResourceManager


@pytest.fixture
def bucket_dir(tmp_path):
    cells = [
        GridCell(GridCellId(10, 20), generate_cell_points(800, seed=1)),
        GridCell(GridCellId(11, 20), generate_cell_points(300, seed=2)),
    ]
    write_bucket_dir(tmp_path, cells)
    return tmp_path, cells


class TestBucketFileSource:
    def test_emits_every_point_once(self, bucket_dir):
        directory, cells = bucket_dir
        source = BucketFileSource(directory, n_chunks=4)
        chunks = list(source.generate())
        for cell in cells:
            emitted = sum(
                c.n_points for c in chunks if c.cell_id == cell.cell_id.key
            )
            assert emitted == cell.n_points

    def test_fixed_chunk_count(self, bucket_dir):
        directory, __ = bucket_dir
        source = BucketFileSource(directory, n_chunks=4)
        by_cell: dict[str, list] = {}
        for chunk in source.generate():
            by_cell.setdefault(chunk.cell_id, []).append(chunk)
        for chunks in by_cell.values():
            assert len(chunks) == 4
            assert all(c.n_partitions == 4 for c in chunks)

    def test_memory_budget_bounds_chunks(self, bucket_dir):
        directory, __ = bucket_dir
        resources = ResourceManager(memory_budget_bytes=16 * 1024)
        source = BucketFileSource(directory, resources=resources)
        cap = resources.max_points_per_partition(6)
        for chunk in source.generate():
            assert chunk.n_points <= cap

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no .gbk"):
            BucketFileSource(tmp_path)

    def test_bad_n_chunks_rejected(self, bucket_dir):
        directory, __ = bucket_dir
        with pytest.raises(ValueError, match="n_chunks"):
            BucketFileSource(directory, n_chunks=0)

    def test_full_pipeline_from_disk(self, bucket_dir):
        """Files on disk -> scan -> partial -> merge, end to end."""
        directory, cells = bucket_dir
        graph = DataflowGraph()
        graph.add(BucketFileSource(directory, n_chunks=3))
        graph.add(
            PartialKMeansOperator(
                k=6, restarts=2, seed_sequence=np.random.SeedSequence(0)
            ),
            cost_hint=16.0,
        )
        graph.add(MergeKMeansSink(k=6))
        graph.connect("scan-files", "partial")
        graph.connect("partial", "merge")

        plan = Planner(ResourceManager(worker_slots=3)).plan(graph)
        outcome = Executor().run(plan)
        models = outcome.value
        assert set(models) == {c.cell_id.key for c in cells}
        for cell in cells:
            model = models[cell.cell_id.key]
            assert model.weights.sum() == pytest.approx(cell.n_points)


def corrupt_header(path):
    """Overwrite the bucket's magic, keeping the file otherwise intact."""
    blob = bytearray(path.read_bytes())
    blob[:4] = b"XXXX"
    path.write_bytes(bytes(blob))


def corrupt_payload(path):
    """Flip one payload byte so only the end-of-stream CRC catches it."""
    blob = bytearray(path.read_bytes())
    blob[-5] ^= 0xFF
    path.write_bytes(bytes(blob))


def write_zero_point_bucket(path):
    """Hand-craft a header declaring zero points (writers refuse this)."""
    header = struct.pack("<4siiQII", b"GBK1", 1, 2, 0, 6, zlib.crc32(b""))
    path.write_bytes(header)


class TestCorruptionPolicies:
    def test_unknown_policy_rejected(self, bucket_dir):
        with pytest.raises(ValueError, match="policy"):
            BucketFileSource(bucket_dir[0], n_chunks=2, on_corrupt="ignore")

    def test_fail_policy_aborts_on_corrupt_header(self, bucket_dir):
        directory, __ = bucket_dir
        corrupt_header(sorted(directory.glob("*.gbk"))[0])
        source = BucketFileSource(directory, n_chunks=2)
        with pytest.raises(GridBucketFormatError, match="magic"):
            list(source.generate())

    def test_quarantine_moves_file_and_continues(self, bucket_dir):
        directory, cells = bucket_dir
        bad = sorted(directory.glob("*.gbk"))[0]
        bad_name = bad.name
        corrupt_header(bad)
        source = BucketFileSource(
            directory, n_chunks=2, on_corrupt=QUARANTINE
        )
        chunks = list(source.generate())
        # The other bucket is fully emitted.
        good = [c for c in cells if f"{c.cell_id.key}.gbk" != bad_name]
        assert sum(c.n_points for c in chunks) == sum(
            c.n_points for c in good
        )
        # The bad file moved into quarantine/ and the loss is recorded.
        assert not bad.exists()
        assert (directory / QUARANTINE_DIRNAME / bad_name).exists()
        assert len(source.quarantined) == 1
        assert source.quarantined[0].startswith(bad_name)

    def test_quarantine_uniquifies_same_basename(self, tmp_path):
        """Same-basename corrupt buckets must not clobber each other."""
        cells = [GridCell(GridCellId(10, 20), generate_cell_points(100, seed=1))]
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        dir_c = tmp_path / "c"
        for directory in (dir_a, dir_b, dir_c):
            write_bucket_dir(directory, cells)
            corrupt_header(directory / "lat10lon20.gbk")
        quarantine = tmp_path / "shared-quarantine"
        for directory in (dir_a, dir_b, dir_c):
            source = BucketFileSource(
                directory,
                n_chunks=2,
                on_corrupt=QUARANTINE,
                quarantine_dir=quarantine,
            )
            assert list(source.generate()) == []
            assert len(source.quarantined) == 1
        moved = sorted(p.name for p in quarantine.glob("*.gbk"))
        assert moved == [
            "lat10lon20.1.gbk",
            "lat10lon20.2.gbk",
            "lat10lon20.gbk",
        ]

    def test_quarantine_mid_stream_corruption(self, bucket_dir):
        directory, cells = bucket_dir
        bad = sorted(directory.glob("*.gbk"))[0]
        corrupt_payload(bad)
        source = BucketFileSource(
            directory, n_chunks=2, on_corrupt=QUARANTINE
        )
        chunks = list(source.generate())
        # The header was fine, so its chunks were emitted before the
        # end-of-stream CRC fired; the file is quarantined regardless.
        assert not bad.exists()
        assert len(source.quarantined) == 1
        assert chunks  # the clean bucket still came through

    def test_zero_point_bucket_is_a_format_error(self, tmp_path):
        write_zero_point_bucket(tmp_path / "empty.gbk")
        source = BucketFileSource(tmp_path, n_chunks=2)
        with pytest.raises(GridBucketFormatError, match="empty bucket"):
            list(source.generate())

    def test_zero_point_bucket_quarantined(self, bucket_dir):
        directory, cells = bucket_dir
        write_zero_point_bucket(directory / "aaa-empty.gbk")
        source = BucketFileSource(
            directory, n_chunks=2, on_corrupt=QUARANTINE
        )
        chunks = list(source.generate())
        assert sum(c.n_points for c in chunks) == sum(
            c.n_points for c in cells
        )
        assert source.quarantined[0].startswith("aaa-empty.gbk")

    def test_mixed_directory_end_to_end_under_both_policies(self, tmp_path):
        directory = tmp_path / "buckets"
        cells = [
            GridCell(GridCellId(10, 20), generate_cell_points(300, seed=1)),
            GridCell(GridCellId(11, 20), generate_cell_points(200, seed=2)),
        ]
        write_bucket_dir(directory, cells)
        corrupt_header(directory / "lat10lon20.gbk")

        def build(on_corrupt):
            graph = DataflowGraph()
            graph.add(
                BucketFileSource(directory, n_chunks=2, on_corrupt=on_corrupt)
            )
            graph.add(
                PartialKMeansOperator(
                    k=4, restarts=1, seed_sequence=np.random.SeedSequence(0)
                ),
                cost_hint=16.0,
            )
            graph.add(MergeKMeansSink(k=4))
            graph.connect("scan-files", "partial")
            graph.connect("partial", "merge")
            return Planner(ResourceManager(worker_slots=2)).plan(graph)

        # fail-fast: the plan aborts on the corrupt bucket.
        with pytest.raises(ExecutionError):
            Executor().run(build("fail"))

        # quarantine: the plan completes with the surviving cell, and the
        # loss shows up in the execution metrics.
        outcome = Executor().run(build(QUARANTINE))
        assert set(outcome.value) == {"lat11lon20"}
        assert outcome.metrics.total_quarantined == 1
        assert outcome.metrics.quarantined_files[0].startswith(
            "lat10lon20.gbk"
        )

    def test_skip_cells_reads_header_only(self, bucket_dir):
        directory, cells = bucket_dir
        skip = cells[0].cell_id.key
        source = BucketFileSource(directory, n_chunks=2, skip_cells={skip})
        chunks = list(source.generate())
        assert skip not in {c.cell_id for c in chunks}

    def test_skip_partitions_suppresses_reemission(self, bucket_dir):
        directory, cells = bucket_dir
        key = cells[0].cell_id.key
        source = BucketFileSource(
            directory, n_chunks=4, skip_partitions={(key, 0), (key, 2)}
        )
        partitions = sorted(
            c.partition for c in source.generate() if c.cell_id == key
        )
        assert partitions == [1, 3]
        # n_partitions stays at the full count so the merge sink still
        # knows how many to expect (journal replay supplies the rest).
        full = [c for c in source.generate() if c.cell_id == key]
        assert all(c.n_partitions == 4 for c in full)
