"""Tests for model invariant checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checks import ModelValidationError, validate_model
from repro.core.model import ClusterModel
from repro.core.pipeline import PartialMergeKMeans


def _model(centroids, weights) -> ClusterModel:
    return ClusterModel(
        centroids=np.asarray(centroids, dtype=float),
        weights=np.asarray(weights, dtype=float),
        mse=1.0,
        method="test",
    )


class TestValidateModel:
    def test_valid_model_passes(self, blobs_2d):
        report = PartialMergeKMeans(k=4, restarts=2, n_chunks=4, seed=0).fit(
            blobs_2d
        )
        outcome = validate_model(
            report.model,
            points=blobs_2d,
            expected_mass=blobs_2d.shape[0],
        )
        assert outcome.ok

    def test_mass_conservation_violation(self):
        model = _model([[0.0, 0.0]], [5.0])
        with pytest.raises(ModelValidationError, match="mass not conserved"):
            validate_model(model, expected_mass=10.0)

    def test_support_violation(self):
        points = np.zeros((10, 2))
        model = _model([[100.0, 100.0]], [10.0])
        with pytest.raises(ModelValidationError, match="bounding box"):
            validate_model(model, points=points)

    def test_support_margin_allows_slack(self):
        points = np.zeros((10, 2))
        model = _model([[0.5, 0.5]], [10.0])
        outcome = validate_model(model, points=points, support_margin=1.0)
        assert outcome.ok

    def test_dimension_mismatch(self):
        model = _model([[0.0, 0.0, 0.0]], [1.0])
        with pytest.raises(ModelValidationError, match="dimensionality"):
            validate_model(model, points=np.zeros((5, 2)))

    def test_collapsed_centroids_detected(self):
        model = _model([[0.0, 0.0], [1e-9, 0.0]], [1.0, 1.0])
        with pytest.raises(ModelValidationError, match="collapsed"):
            validate_model(model, min_centroid_separation=1e-3)

    def test_separated_centroids_pass(self):
        model = _model([[0.0, 0.0], [5.0, 0.0]], [1.0, 1.0])
        outcome = validate_model(model, min_centroid_separation=1.0)
        assert outcome.ok

    def test_report_mode_collects_without_raising(self):
        model = _model([[100.0, 100.0]], [5.0])
        outcome = validate_model(
            model,
            points=np.zeros((4, 2)),
            expected_mass=10.0,
            raise_on_failure=False,
        )
        assert not outcome.ok
        assert len(outcome.violations) == 2

    def test_centroid_is_convex_combination_invariant(self, blobs_6d):
        """Margin-zero support check holds for any real k-means output."""
        report = PartialMergeKMeans(k=6, restarts=2, n_chunks=3, seed=1).fit(
            blobs_6d
        )
        outcome = validate_model(report.model, points=blobs_6d)
        assert outcome.ok
