"""Unit tests for the high-level PartialMergeKMeans API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import PartialMergeKMeans, split_into_chunks


class TestSplitIntoChunks:
    def test_partition_is_exact(self, blobs_2d, rng):
        chunks = split_into_chunks(blobs_2d, 5, rng)
        assert len(chunks) == 5
        assert sum(c.shape[0] for c in chunks) == blobs_2d.shape[0]

    def test_chunk_sizes_differ_by_at_most_one(self, rng):
        points = np.arange(23, dtype=float).reshape(-1, 1)
        chunks = split_into_chunks(points, 5, rng)
        sizes = sorted(c.shape[0] for c in chunks)
        assert sizes[-1] - sizes[0] <= 1

    def test_every_point_appears_once(self, rng):
        points = np.arange(40, dtype=float).reshape(-1, 1)
        chunks = split_into_chunks(points, 7, rng)
        recombined = np.sort(np.vstack(chunks).ravel())
        np.testing.assert_array_equal(recombined, points.ravel())

    def test_rejects_too_many_chunks(self, rng):
        with pytest.raises(ValueError, match="cannot split"):
            split_into_chunks(np.ones((3, 2)), 4, rng)

    def test_rejects_zero_chunks(self, rng):
        with pytest.raises(ValueError, match="n_chunks"):
            split_into_chunks(np.ones((3, 2)), 0, rng)


class TestPartialMergeKMeansValidation:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            PartialMergeKMeans(k=0)

    def test_rejects_bad_restarts(self):
        with pytest.raises(ValueError, match="restarts"):
            PartialMergeKMeans(k=3, restarts=0)

    def test_rejects_bad_merge_mode(self):
        with pytest.raises(ValueError, match="merge_mode"):
            PartialMergeKMeans(k=3, merge_mode="hierarchical")

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            PartialMergeKMeans(k=3, max_workers=0)


class TestPartialMergeKMeansFit:
    def test_report_structure(self, blobs_2d):
        report = PartialMergeKMeans(k=4, restarts=2, n_chunks=4, seed=0).fit(
            blobs_2d
        )
        assert len(report.partials) == 4
        assert report.model.partitions == 4
        assert report.model.k == 4
        assert report.model.method == "partial/merge[collective]"

    def test_model_weights_cover_all_points(self, blobs_2d):
        report = PartialMergeKMeans(k=4, restarts=2, n_chunks=5, seed=0).fit(
            blobs_2d
        )
        assert report.model.weights.sum() == pytest.approx(blobs_2d.shape[0])

    def test_mse_evaluated_on_raw_points(self, blobs_2d):
        from repro.core.quality import mse as evaluate_mse

        report = PartialMergeKMeans(k=4, restarts=2, n_chunks=4, seed=0).fit(
            blobs_2d
        )
        assert report.model.mse == pytest.approx(
            evaluate_mse(blobs_2d, report.model.centroids)
        )

    def test_finds_blob_structure(self, blobs_2d, blob_centers_2d):
        report = PartialMergeKMeans(k=4, restarts=4, n_chunks=4, seed=1).fit(
            blobs_2d
        )
        for center in blob_centers_2d:
            nearest = np.min(
                ((report.model.centroids - center) ** 2).sum(axis=1)
            )
            assert nearest < 0.5

    def test_deterministic_given_seed(self, blobs_6d):
        a = PartialMergeKMeans(k=5, restarts=2, n_chunks=4, seed=3).fit(blobs_6d)
        b = PartialMergeKMeans(k=5, restarts=2, n_chunks=4, seed=3).fit(blobs_6d)
        np.testing.assert_array_equal(a.model.centroids, b.model.centroids)

    def test_thread_clones_match_serial_result(self, blobs_6d):
        serial = PartialMergeKMeans(
            k=5, restarts=2, n_chunks=4, max_workers=1, seed=3
        ).fit(blobs_6d)
        threaded = PartialMergeKMeans(
            k=5, restarts=2, n_chunks=4, max_workers=4, seed=3
        ).fit(blobs_6d)
        np.testing.assert_array_equal(
            serial.model.centroids, threaded.model.centroids
        )

    def test_chunks_clamped_when_fewer_points(self):
        points = np.random.default_rng(0).normal(size=(3, 2))
        report = PartialMergeKMeans(k=2, restarts=1, n_chunks=10, seed=0).fit(
            points
        )
        assert report.model.partitions == 3

    def test_incremental_mode_runs(self, blobs_2d):
        report = PartialMergeKMeans(
            k=4, restarts=2, n_chunks=4, merge_mode="incremental", seed=0
        ).fit(blobs_2d)
        assert report.model.method == "partial/merge[incremental]"
        assert report.model.weights.sum() == pytest.approx(blobs_2d.shape[0])

    def test_timing_fields_populated(self, blobs_2d):
        model = PartialMergeKMeans(k=4, restarts=2, n_chunks=4, seed=0).fit(
            blobs_2d
        ).model
        assert model.total_seconds > 0.0
        assert model.partial_seconds > 0.0
        assert model.merge_seconds >= 0.0
        assert model.total_seconds >= model.merge_seconds


class TestFitChunks:
    def test_custom_partitioning(self, blobs_2d):
        algo = PartialMergeKMeans(k=4, restarts=2, seed=0)
        chunks = [blobs_2d[:100], blobs_2d[100:250], blobs_2d[250:]]
        report = algo.fit_chunks(chunks, evaluate_on=blobs_2d)
        assert report.model.partitions == 3
        assert report.model.weights.sum() == pytest.approx(blobs_2d.shape[0])

    def test_rejects_empty_chunk_list(self):
        with pytest.raises(ValueError, match="at least one chunk"):
            PartialMergeKMeans(k=2).fit_chunks([])

    def test_without_evaluate_on_uses_merge_mse(self, blobs_2d):
        algo = PartialMergeKMeans(k=4, restarts=2, seed=0)
        chunks = [blobs_2d[:200], blobs_2d[200:]]
        report = algo.fit_chunks(chunks)
        assert report.model.mse == pytest.approx(report.merge.mse)
