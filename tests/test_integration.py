"""Cross-module integration tests: the full paper pipeline end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SerialKMeans
from repro.compression import Codebook, MultivariateHistogram
from repro.core import PartialMergeKMeans
from repro.core.quality import mse as evaluate_mse
from repro.data import (
    SwathSimulator,
    bin_stripes_into_buckets,
    generate_cell_points,
    make_partitioner,
    scan_bucket_dir,
    stream_bucket_points,
    write_bucket_dir,
)
from repro.stream import ResourceManager, run_partial_merge_stream


class TestSwathToModelPipeline:
    """Acquisition -> binning -> disk -> scan -> cluster -> compress."""

    def test_full_chain(self, tmp_path, rng):
        simulator = SwathSimulator(
            footprints_per_orbit=200, samples_per_footprint=60, seed=1
        )
        buckets = bin_stripes_into_buckets(simulator.fly(2))
        populated = [
            b.freeze(rng) for b in buckets.values() if b.n_points >= 100
        ]
        assert populated, "swath must populate at least one dense cell"

        write_bucket_dir(tmp_path, populated[:3])

        for cell in scan_bucket_dir(tmp_path):
            report = PartialMergeKMeans(
                k=8, restarts=2, n_chunks=3, seed=0
            ).fit(cell.points)
            model = report.model
            assert model.weights.sum() == pytest.approx(cell.n_points)

            histogram = MultivariateHistogram.from_model(cell.points, model)
            assert histogram.total_count == pytest.approx(cell.n_points)

            codebook = Codebook.from_model(model)
            assert codebook.distortion(cell.points) == pytest.approx(
                model.mse, rel=1e-9
            )


class TestStreamedFileScan:
    """One-pass file streaming feeds the chunked pipeline directly."""

    def test_stream_chunks_into_pipeline(self, tmp_path, rng):
        from repro.data.gridcell import GridCell, GridCellId

        points = generate_cell_points(2_000, seed=5)
        cell = GridCell(GridCellId(0, 0), points)
        write_bucket_dir(tmp_path, [cell])
        path = next(tmp_path.glob("*.gbk"))

        chunks = list(stream_bucket_points(path, chunk_points=500))
        algo = PartialMergeKMeans(k=10, restarts=2, seed=0)
        report = algo.fit_chunks(chunks, evaluate_on=points)
        assert report.model.partitions == 4
        assert report.model.weights.sum() == pytest.approx(2_000)


class TestPartitionerIntoPipeline:
    @pytest.mark.parametrize("name", ["random", "spatial", "salami"])
    def test_all_slicing_strategies_cluster(self, name):
        points = generate_cell_points(1_200, seed=2)
        chunks = make_partitioner(name, seed=0).split(points, 4)
        report = PartialMergeKMeans(k=10, restarts=2, seed=0).fit_chunks(
            chunks, evaluate_on=points
        )
        assert report.model.weights.sum() == pytest.approx(1_200)
        assert report.model.mse > 0


class TestStreamEngineVsDirectApi:
    def test_same_data_same_scale_of_quality(self):
        points = generate_cell_points(3_000, seed=8)
        serial = SerialKMeans(k=20, restarts=3, seed=0).fit(points)
        direct = PartialMergeKMeans(
            k=20, restarts=3, n_chunks=5, seed=0
        ).fit(points)
        streamed, __ = run_partial_merge_stream(
            {"cell": points}, k=20, restarts=3, n_chunks=5, seed=0
        )
        serial_mse = evaluate_mse(points, serial.centroids)
        assert direct.model.mse < serial_mse * 3
        assert streamed["cell"].mse < serial_mse * 3

    def test_memory_budget_bounds_actual_chunk_sizes(self):
        points = generate_cell_points(5_000, seed=9)
        resources = ResourceManager(
            memory_budget_bytes=64 * 1024, worker_slots=2
        )
        models, __ = run_partial_merge_stream(
            {"cell": points}, k=10, restarts=1, resources=resources, seed=0
        )
        cap = resources.max_points_per_partition(6)
        partitions = models["cell"].partitions
        assert -(-5_000 // partitions) <= cap


class TestPaperShapeSmoke:
    """Tiny-scale sanity check of the paper's qualitative claims."""

    def test_partial_time_smaller_than_serial_at_scale(self):
        points = generate_cell_points(6_000, seed=3)
        serial = SerialKMeans(k=40, restarts=3, seed=0).fit(points)
        split = PartialMergeKMeans(
            k=40, restarts=3, n_chunks=10, seed=0
        ).fit(points)
        # The headline claim: chunked clustering is faster end to end.
        assert split.model.total_seconds < serial.total_seconds

    def test_merge_time_is_small_fraction(self):
        points = generate_cell_points(4_000, seed=4)
        split = PartialMergeKMeans(
            k=40, restarts=3, n_chunks=5, seed=0
        ).fit(points)
        assert split.model.merge_seconds < split.model.partial_seconds
