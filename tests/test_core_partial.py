"""Unit tests for the partial k-means operator kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partial import partial_kmeans


class TestPartialKMeans:
    def test_weights_sum_to_partition_size(self, blobs_2d, rng):
        result = partial_kmeans(blobs_2d, k=4, restarts=3, rng=rng)
        assert result.summary.total_weight == pytest.approx(blobs_2d.shape[0])
        assert result.n_points == blobs_2d.shape[0]

    def test_no_zero_weight_centroids(self, blobs_2d, rng):
        result = partial_kmeans(blobs_2d, k=4, restarts=2, rng=rng)
        assert (result.summary.weights > 0).all()

    def test_source_label_propagates(self, blobs_2d, rng):
        result = partial_kmeans(blobs_2d, k=4, restarts=1, rng=rng, source="P7")
        assert result.summary.source == "P7"

    def test_k_clamped_for_tiny_partition(self, rng):
        points = np.random.default_rng(0).normal(size=(5, 2))
        result = partial_kmeans(points, k=40, restarts=1, rng=rng)
        assert result.summary.k <= 5
        assert result.summary.total_weight == pytest.approx(5.0)

    def test_mse_is_partition_local(self, blobs_2d, rng):
        result = partial_kmeans(blobs_2d, k=4, restarts=3, rng=rng)
        assert result.mse >= 0.0

    def test_iterations_accumulate_over_restarts(self, blobs_2d):
        one = partial_kmeans(
            blobs_2d, k=4, restarts=1, rng=np.random.default_rng(0)
        )
        many = partial_kmeans(
            blobs_2d, k=4, restarts=5, rng=np.random.default_rng(0)
        )
        assert many.iterations > one.iterations

    def test_seconds_nonnegative(self, blobs_2d, rng):
        assert partial_kmeans(blobs_2d, k=4, restarts=1, rng=rng).seconds >= 0.0

    def test_deterministic_given_rng_seed(self, blobs_6d):
        a = partial_kmeans(blobs_6d, k=5, restarts=2, rng=np.random.default_rng(9))
        b = partial_kmeans(blobs_6d, k=5, restarts=2, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.summary.centroids, b.summary.centroids)
        np.testing.assert_array_equal(a.summary.weights, b.summary.weights)

    def test_centroid_mass_center_matches_data_mean(self, blobs_2d, rng):
        """Weighted centroid mean must equal the partition mean exactly
        (centroids are cluster means, weights are cluster sizes)."""
        result = partial_kmeans(blobs_2d, k=4, restarts=2, rng=rng)
        np.testing.assert_allclose(
            result.summary.mean(), blobs_2d.mean(axis=0), rtol=1e-9
        )
