"""Tests for the partial/merge k-means stream operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quality import mse as evaluate_mse
from repro.stream.items import DataChunk
from repro.stream.kmeans_ops import (
    GridCellChunkSource,
    MergeKMeansSink,
    PartialKMeansOperator,
    run_partial_merge_stream,
)
from repro.stream.scheduler import ResourceManager


@pytest.fixture
def cells(blobs_6d) -> dict[str, np.ndarray]:
    return {"cellA": blobs_6d, "cellB": blobs_6d[:300] + 2.0}


class TestGridCellChunkSource:
    def test_emits_all_points_once(self, cells):
        source = GridCellChunkSource(cells, n_chunks=4, seed=0)
        chunks = list(source.generate())
        for cell_id, points in cells.items():
            emitted = sum(
                c.n_points for c in chunks if c.cell_id == cell_id
            )
            assert emitted == points.shape[0]

    def test_partition_metadata(self, cells):
        source = GridCellChunkSource(cells, n_chunks=3, seed=0)
        chunks = [c for c in source.generate() if c.cell_id == "cellA"]
        assert sorted(c.partition for c in chunks) == [0, 1, 2]
        assert all(c.n_partitions == 3 for c in chunks)

    def test_memory_budget_derives_chunks(self, cells):
        resources = ResourceManager(memory_budget_bytes=64 * 1024)
        source = GridCellChunkSource(cells, resources=resources, seed=0)
        chunks = list(source.generate())
        cap = resources.max_points_per_partition(6)
        assert all(c.n_points <= cap for c in chunks)

    def test_requires_chunking_policy(self, cells):
        with pytest.raises(ValueError, match="n_chunks or resources"):
            GridCellChunkSource(cells)

    def test_rejects_empty_cells(self):
        with pytest.raises(ValueError, match="must not be empty"):
            GridCellChunkSource({}, n_chunks=2)

    def test_zero_point_cell_yields_empty_watermark(self, cells):
        from repro.stream.items import Watermark

        cells = dict(cells, hole=np.zeros((0, 6)))
        source = GridCellChunkSource(cells, n_chunks=3, seed=0)
        items = list(source.generate())
        marks = [i for i in items if isinstance(i, Watermark)]
        assert [m.cell_id for m in marks] == ["hole"]
        assert marks[0].n_partitions == 0
        assert marks[0].payload == {"dim": 6, "n_points": 0}
        assert not any(
            isinstance(i, DataChunk) and i.cell_id == "hole" for i in items
        )


class TestPartialKMeansOperator:
    def test_process_yields_centroid_message(self, blobs_6d):
        operator = PartialKMeansOperator(
            k=5, restarts=2, seed_sequence=np.random.SeedSequence(0)
        )
        chunk = DataChunk(
            cell_id="c", partition=1, points=blobs_6d[:200], n_partitions=3
        )
        (message,) = list(operator.process(chunk))
        assert message.cell_id == "c"
        assert message.partition == 1
        assert message.n_partitions == 3
        assert message.summary.total_weight == pytest.approx(200)

    def test_clones_are_independent(self, blobs_6d):
        operator = PartialKMeansOperator(
            k=5, restarts=1, seed_sequence=np.random.SeedSequence(0)
        )
        clone = operator.clone()
        assert clone is not operator
        assert clone.name == operator.name
        chunk = DataChunk(cell_id="c", partition=0, points=blobs_6d[:100])
        (a,) = list(operator.process(chunk))
        (b,) = list(clone.process(chunk))
        # Both valid summaries; they used different seed streams.
        assert a.summary.total_weight == b.summary.total_weight


class TestMergeKMeansSink:
    def test_eager_finalization_per_cell(self, blobs_6d):
        operator = PartialKMeansOperator(
            k=4, restarts=1, seed_sequence=np.random.SeedSequence(1)
        )
        sink = MergeKMeansSink(k=4)
        for partition in range(3):
            chunk = DataChunk(
                cell_id="only",
                partition=partition,
                points=blobs_6d[partition * 100 : (partition + 1) * 100],
                n_partitions=3,
            )
            for message in operator.process(chunk):
                sink.consume(message)
        # All three partitions arrived: the cell must already be final.
        assert "only" in sink.result()

    def test_result_flushes_incomplete_cells(self, blobs_6d):
        operator = PartialKMeansOperator(
            k=4, restarts=1, seed_sequence=np.random.SeedSequence(1)
        )
        sink = MergeKMeansSink(k=4)
        chunk = DataChunk(
            cell_id="partial-cell",
            partition=0,
            points=blobs_6d[:100],
            n_partitions=0,  # unknown total: only result() can finalise
        )
        for message in operator.process(chunk):
            sink.consume(message)
        models = sink.result()
        assert "partial-cell" in models

    def test_zero_partition_watermark_records_empty_model(self):
        from repro.stream.items import Watermark

        sink = MergeKMeansSink(k=4)
        sink.consume(
            Watermark(cell_id="hole", n_partitions=0, payload={"dim": 6})
        )
        models = sink.result()
        assert models["hole"].centroids.shape == (0, 6)
        assert models["hole"].weights.shape == (0,)
        assert models["hole"].extra["empty_cell"] is True
        assert sink.incomplete_cells == []

    def test_short_finalisation_records_missing_partitions(self, blobs_6d):
        operator = PartialKMeansOperator(
            k=4, restarts=1, seed_sequence=np.random.SeedSequence(6)
        )
        sink = MergeKMeansSink(k=4)
        for partition in (0, 2):  # partition 1 was lost upstream
            chunk = DataChunk(
                cell_id="lossy",
                partition=partition,
                points=blobs_6d[partition * 100 : (partition + 1) * 100],
                n_partitions=3,
            )
            for message in operator.process(chunk):
                sink.consume(message)
        models = sink.result()
        model = models["lossy"]
        assert model.partitions == 2
        assert model.extra["expected_partitions"] == 3
        assert model.extra["missing_partitions"] == [1]
        assert sink.incomplete_cells == ["lossy"]


class TestRunPartialMergeStream:
    def test_end_to_end_models(self, cells):
        models, outcome = run_partial_merge_stream(
            cells, k=5, restarts=2, n_chunks=3, seed=0
        )
        assert set(models) == set(cells)
        for cell_id, model in models.items():
            assert model.k <= 5
            assert model.weights.sum() == pytest.approx(
                cells[cell_id].shape[0]
            )
            assert model.mse == pytest.approx(
                evaluate_mse(cells[cell_id], model.centroids)
            )
        assert outcome.metrics.wall_seconds > 0

    def test_quality_comparable_to_direct_pipeline(self, cells):
        from repro.core.pipeline import PartialMergeKMeans

        models, __ = run_partial_merge_stream(
            cells, k=5, restarts=3, n_chunks=3, seed=0
        )
        direct = PartialMergeKMeans(k=5, restarts=3, n_chunks=3, seed=0).fit(
            cells["cellA"]
        )
        assert models["cellA"].mse <= direct.model.mse * 3 + 1.0

    def test_clone_override_changes_plan_not_results_shape(self, cells):
        models_1, outcome_1 = run_partial_merge_stream(
            cells, k=5, restarts=1, n_chunks=4, partial_clones=1, seed=0
        )
        models_3, outcome_3 = run_partial_merge_stream(
            cells, k=5, restarts=1, n_chunks=4, partial_clones=3, seed=0
        )
        partial_ops_1 = [
            op for op in outcome_1.metrics.operators if "partial" in op.name
        ]
        partial_ops_3 = [
            op for op in outcome_3.metrics.operators if "partial" in op.name
        ]
        assert len(partial_ops_1) == 1
        assert len(partial_ops_3) == 3
        assert set(models_1) == set(models_3)

    def test_zero_point_cell_end_to_end(self, cells):
        cells = dict(cells, hole=np.zeros((0, 6)))
        models, outcome = run_partial_merge_stream(
            cells, k=5, restarts=1, n_chunks=3, seed=0
        )
        assert set(models) == set(cells)
        assert models["hole"].k == 0
        assert models["hole"].extra["empty_cell"] is True
        assert outcome.metrics.incomplete_cells == []

    def test_degrade_surfaces_incomplete_cells_in_metrics(self, cells):
        from repro.stream.faults import FaultPlan, FaultSpec
        from repro.stream.supervision import SupervisionPolicy

        fault_plan = FaultPlan(
            [FaultSpec(target="partial", kind="crash", at_index=2)]
        )
        models, outcome = run_partial_merge_stream(
            cells,
            k=5,
            restarts=1,
            n_chunks=4,
            seed=0,
            partial_clones=1,
            fault_plan=fault_plan,
            supervision={"partial": SupervisionPolicy.degrade()},
        )
        incomplete = outcome.metrics.incomplete_cells
        assert incomplete  # the injected crash dropped a chunk
        for cell_id in incomplete:
            assert models[cell_id].extra["missing_partitions"]
        assert any("incomplete" in line for line in outcome.metrics.summary_lines())

    def test_memory_driven_chunking(self, cells):
        resources = ResourceManager(
            memory_budget_bytes=32 * 1024, worker_slots=2
        )
        models, __ = run_partial_merge_stream(
            cells, k=5, restarts=1, resources=resources, seed=0
        )
        cap = resources.max_points_per_partition(6)
        expected = resources.partitions_for(cells["cellA"].shape[0], 6)
        assert models["cellA"].partitions == min(
            expected, cells["cellA"].shape[0]
        )
        assert cap * models["cellA"].partitions >= cells["cellA"].shape[0]


class TestWatermarkFinalization:
    def test_watermark_announces_count_after_the_fact(self, blobs_6d):
        """A source that cannot pre-count partitions finalises via a
        trailing watermark."""
        from repro.stream.items import Watermark

        operator = PartialKMeansOperator(
            k=4, restarts=1, seed_sequence=np.random.SeedSequence(2)
        )
        sink = MergeKMeansSink(k=4)
        for partition in range(3):
            chunk = DataChunk(
                cell_id="late",
                partition=partition,
                points=blobs_6d[partition * 100 : (partition + 1) * 100],
                n_partitions=0,  # unknown at emission time
            )
            for message in operator.process(chunk):
                sink.consume(message)
        assert sink._models == {}  # nothing finalised yet
        sink.consume(Watermark(cell_id="late", n_partitions=3))
        assert "late" in sink._models

    def test_early_watermark_waits_for_stragglers(self, blobs_6d):
        """A watermark overtaking in-flight chunks must not finalise."""
        from repro.stream.items import Watermark

        operator = PartialKMeansOperator(
            k=4, restarts=1, seed_sequence=np.random.SeedSequence(3)
        )
        sink = MergeKMeansSink(k=4)
        sink.consume(Watermark(cell_id="cell", n_partitions=2))
        assert sink._models == {}
        messages = []
        for partition in range(2):
            chunk = DataChunk(
                cell_id="cell",
                partition=partition,
                points=blobs_6d[partition * 100 : (partition + 1) * 100],
                n_partitions=0,
            )
            messages.extend(operator.process(chunk))
        sink.consume(messages[0])
        assert sink._models == {}
        sink.consume(messages[1])
        assert "cell" in sink._models

    def test_partial_operator_passes_watermarks_through(self):
        from repro.stream.items import Watermark

        operator = PartialKMeansOperator(
            k=4, restarts=1, seed_sequence=np.random.SeedSequence(4)
        )
        mark = Watermark(cell_id="x", n_partitions=5)
        assert list(operator.process(mark)) == [mark]
