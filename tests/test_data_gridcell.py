"""Unit tests for the grid-cell model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.gridcell import GridBucket, GridCell, GridCellId


class TestGridCellId:
    def test_valid_range(self):
        cell = GridCellId(lat=45, lon=-120)
        assert cell.lat == 45
        assert cell.lon == -120

    @pytest.mark.parametrize("lat", [-91, 90, 120])
    def test_rejects_bad_lat(self, lat):
        with pytest.raises(ValueError, match="lat"):
            GridCellId(lat=lat, lon=0)

    @pytest.mark.parametrize("lon", [-181, 180, 250])
    def test_rejects_bad_lon(self, lon):
        with pytest.raises(ValueError, match="lon"):
            GridCellId(lat=0, lon=lon)

    def test_containing_floors(self):
        assert GridCellId.containing(45.7, -120.2) == GridCellId(45, -121)

    def test_containing_wraps_longitude(self):
        assert GridCellId.containing(0.5, 190.5) == GridCellId(0, -170)
        assert GridCellId.containing(0.5, -190.5) == GridCellId(0, 169)

    def test_containing_clamps_north_pole(self):
        assert GridCellId.containing(90.0, 10.0).lat == 89

    def test_contains_roundtrip(self):
        cell = GridCellId.containing(12.3, 45.6)
        assert cell.contains(12.3, 45.6)
        assert not cell.contains(13.5, 45.6)

    def test_key_roundtrip(self):
        cell = GridCellId(lat=-33, lon=151)
        assert GridCellId.from_key(cell.key) == cell

    def test_from_key_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed"):
            GridCellId.from_key("45-120")

    def test_ordering_is_total(self):
        cells = [GridCellId(1, 5), GridCellId(0, 9), GridCellId(1, -5)]
        ordered = sorted(cells)
        assert ordered[0] == GridCellId(0, 9)
        assert ordered[1] == GridCellId(1, -5)


class TestGridCell:
    def test_properties(self):
        cell = GridCell(GridCellId(0, 0), np.ones((10, 6)))
        assert cell.n_points == 10
        assert cell.dim == 6

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError):
            GridCell(GridCellId(0, 0), np.empty((0, 6)))


class TestGridBucket:
    def test_accumulates_fragments(self):
        bucket = GridBucket(cell_id=GridCellId(10, 20))
        bucket.append(np.ones((5, 3)))
        bucket.append(np.zeros((7, 3)))
        assert bucket.n_points == 12

    def test_freeze_stacks_in_order_without_rng(self):
        bucket = GridBucket(cell_id=GridCellId(0, 0))
        bucket.append(np.zeros((2, 1)))
        bucket.append(np.ones((2, 1)))
        cell = bucket.freeze()
        np.testing.assert_allclose(cell.points.ravel(), [0, 0, 1, 1])

    def test_freeze_shuffles_with_rng(self):
        bucket = GridBucket(cell_id=GridCellId(0, 0))
        bucket.append(np.arange(100, dtype=float).reshape(-1, 1))
        cell = bucket.freeze(np.random.default_rng(0))
        assert not np.array_equal(cell.points.ravel(), np.arange(100))
        np.testing.assert_allclose(
            np.sort(cell.points.ravel()), np.arange(100)
        )

    def test_freeze_empty_raises(self):
        bucket = GridBucket(cell_id=GridCellId(0, 0))
        with pytest.raises(ValueError, match="empty"):
            bucket.freeze()
