"""Unit tests for entropy-constrained VQ."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ecvq import ecvq


class TestEcvq:
    def test_lambda_zero_behaves_like_kmeans(self, blobs_2d, rng):
        result = ecvq(blobs_2d, max_k=8, lam=0.0, rng=rng)
        assert result.effective_k >= 4
        assert result.mse < 5.0

    def test_large_lambda_prunes_codebook(self, blobs_2d):
        gentle = ecvq(blobs_2d, max_k=16, lam=0.0, rng=np.random.default_rng(0))
        harsh = ecvq(blobs_2d, max_k=16, lam=50.0, rng=np.random.default_rng(0))
        assert harsh.effective_k <= gentle.effective_k

    def test_weights_sum_to_mass(self, blobs_2d, rng):
        result = ecvq(blobs_2d, max_k=10, lam=1.0, rng=rng)
        assert result.summary.total_weight == pytest.approx(blobs_2d.shape[0])

    def test_rate_bounded_by_log_k(self, blobs_2d, rng):
        result = ecvq(blobs_2d, max_k=12, lam=0.5, rng=rng)
        assert 0.0 <= result.rate_bits <= np.log2(max(2, result.effective_k)) + 1e-9

    def test_effective_k_at_least_one(self, rng):
        points = np.ones((20, 2))  # fully degenerate data
        result = ecvq(points, max_k=8, lam=10.0, rng=rng)
        assert result.effective_k >= 1
        assert result.mse == pytest.approx(0.0, abs=1e-12)

    def test_lagrangian_consistent(self, blobs_2d, rng):
        result = ecvq(blobs_2d, max_k=8, lam=2.0, rng=rng)
        assert result.lagrangian == pytest.approx(
            result.mse + 2.0 * result.rate_bits
        )

    def test_rejects_bad_params(self, blobs_2d, rng):
        with pytest.raises(ValueError, match="max_k"):
            ecvq(blobs_2d, max_k=0, lam=1.0, rng=rng)
        with pytest.raises(ValueError, match="lam"):
            ecvq(blobs_2d, max_k=4, lam=-1.0, rng=rng)

    def test_weighted_input(self, rng):
        points = np.array([[0.0], [1.0], [10.0]])
        weights = np.array([10.0, 10.0, 1.0])
        result = ecvq(points, max_k=3, lam=0.0, rng=rng, weights=weights)
        assert result.summary.total_weight == pytest.approx(21.0)

    def test_deterministic(self, blobs_6d):
        a = ecvq(blobs_6d, max_k=10, lam=1.0, rng=np.random.default_rng(4))
        b = ecvq(blobs_6d, max_k=10, lam=1.0, rng=np.random.default_rng(4))
        np.testing.assert_array_equal(a.summary.centroids, b.summary.centroids)
        assert a.effective_k == b.effective_k
