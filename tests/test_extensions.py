"""Tests for tracing, model selection, and outlier handling."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines.serial import SerialKMeans
from repro.compression.outliers import compress_with_outliers, split_outliers
from repro.core.model_selection import (
    distortion_curve,
    suggest_k_elbow,
    suggest_k_rate,
)
from repro.stream.distributed import DistributedSimulation, paper_testbed
from repro.stream.tracing import dump_metrics_json, metrics_to_dict, render_gantt


class TestTracing:
    def _metrics(self, blobs_6d):
        from repro.stream.kmeans_ops import run_partial_merge_stream

        __, outcome = run_partial_merge_stream(
            {"c": blobs_6d}, k=4, restarts=1, n_chunks=3, seed=0, max_iter=30
        )
        return outcome.metrics

    def test_metrics_to_dict_roundtrips_json(self, blobs_6d):
        metrics = self._metrics(blobs_6d)
        payload = metrics_to_dict(metrics)
        text = json.dumps(payload)
        restored = json.loads(text)
        assert restored["wall_seconds"] > 0
        names = {op["name"] for op in restored["operators"]}
        assert any("partial" in name for name in names)
        assert "q->merge" in restored["queues"]

    def test_dump_metrics_json(self, tmp_path, blobs_6d):
        metrics = self._metrics(blobs_6d)
        path = dump_metrics_json(metrics, tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded["queues"]["q->partial"]["puts"] == 3

    def test_render_gantt(self):
        sim = DistributedSimulation(paper_testbed(3))
        report = sim.simulate_partial_merge(
            n_points=10_000, dim=6, k=20, n_chunks=6,
            restarts=3, partial_iterations=10.0,
        )
        chart = render_gantt(report)
        assert "Gantt" in chart
        assert "pc0" in chart and "pc2" in chart
        assert "#" in chart  # compute marks
        assert "M" in chart  # the merge

    def test_render_gantt_validation(self):
        sim = DistributedSimulation(paper_testbed(1))
        report = sim.simulate_partial_merge(
            n_points=100, dim=2, k=4, n_chunks=2,
            restarts=1, partial_iterations=5.0,
        )
        with pytest.raises(ValueError, match="width"):
            render_gantt(report, width=5)


class TestModelSelection:
    def test_distortion_curve_decreasing(self, blobs_2d):
        curve = distortion_curve(
            blobs_2d, ks=(1, 2, 4, 8), restarts=3,
            rng=np.random.default_rng(0), max_iter=50,
        )
        mses = [m for __, m in curve]
        assert mses == sorted(mses, reverse=True)

    def test_elbow_finds_true_k(self, blobs_2d):
        """4 well-separated blobs: the elbow must land at k=4."""
        curve = distortion_curve(
            blobs_2d, ks=(1, 2, 3, 4, 6, 8, 12), restarts=4,
            rng=np.random.default_rng(1), max_iter=60,
        )
        assert suggest_k_elbow(curve) == 4

    def test_rate_threshold(self, blobs_2d):
        curve = distortion_curve(
            blobs_2d, ks=(1, 2, 4, 8, 16), restarts=3,
            rng=np.random.default_rng(2), max_iter=60,
        )
        chosen = suggest_k_rate(curve, min_improvement=0.2)
        assert chosen == 4  # past the true 4 the curve flattens

    def test_subsampling(self, rng):
        points = rng.normal(size=(5_000, 3))
        curve = distortion_curve(
            points, ks=(2, 4), restarts=1, rng=rng,
            sample_size=500, max_iter=20,
        )
        assert len(curve) == 2

    def test_validation(self, blobs_2d, rng):
        with pytest.raises(ValueError, match="non-empty"):
            distortion_curve(blobs_2d, ks=(), rng=rng)
        with pytest.raises(ValueError, match="increasing"):
            distortion_curve(blobs_2d, ks=(4, 2), rng=rng)
        with pytest.raises(ValueError, match="at least 3"):
            suggest_k_elbow([(1, 2.0), (2, 1.0)])
        with pytest.raises(ValueError, match="min_improvement"):
            suggest_k_rate([(1, 2.0), (2, 1.0)], min_improvement=2.0)


class TestOutliers:
    @pytest.fixture
    def contaminated(self, blobs_2d, rng):
        spikes = rng.uniform(50, 60, size=(8, 2))
        return np.vstack([blobs_2d, spikes])

    def test_split_catches_spikes(self, contaminated, blobs_2d):
        model = SerialKMeans(k=4, restarts=3, seed=0).fit(blobs_2d)
        split = split_outliers(contaminated, model.centroids, quantile=0.97)
        # All 8 spikes must be in the tail.
        assert (split.outliers > 40).all(axis=1).sum() == 8

    def test_split_conserves_points(self, contaminated, blobs_2d):
        model = SerialKMeans(k=4, restarts=3, seed=0).fit(blobs_2d)
        split = split_outliers(contaminated, model.centroids, quantile=0.95)
        total = split.body.shape[0] + split.outliers.shape[0]
        assert total == contaminated.shape[0]
        assert 0.0 < split.outlier_fraction < 0.1

    def test_validation(self, blobs_2d):
        model = SerialKMeans(k=4, restarts=2, seed=0).fit(blobs_2d)
        with pytest.raises(ValueError, match="quantile"):
            split_outliers(blobs_2d, model.centroids, quantile=1.5)

    def test_compress_with_outliers_counts(self, contaminated, blobs_2d):
        model = SerialKMeans(k=4, restarts=3, seed=0).fit(blobs_2d)
        compressed = compress_with_outliers(
            contaminated, model, quantile=0.97
        )
        assert compressed.total_count == pytest.approx(contaminated.shape[0])
        # Query covering everything counts everything.
        lo = contaminated.min(axis=0) - 1
        hi = contaminated.max(axis=0) + 1
        assert compressed.estimate_count(lo, hi) == pytest.approx(
            contaminated.shape[0], rel=1e-9
        )

    def test_outliers_do_not_stretch_buckets(self, contaminated, blobs_2d):
        """With the tail split off, bucket boxes stay tight around the
        blobs instead of reaching toward the spikes."""
        model = SerialKMeans(k=4, restarts=3, seed=0).fit(blobs_2d)
        compressed = compress_with_outliers(
            contaminated, model, quantile=0.97
        )
        for bucket in compressed.histogram.buckets:
            assert (bucket.upper < 20).all()

    def test_tail_queries_answered_exactly(self, contaminated, blobs_2d):
        model = SerialKMeans(k=4, restarts=3, seed=0).fit(blobs_2d)
        compressed = compress_with_outliers(
            contaminated, model, quantile=0.97
        )
        count = compressed.estimate_count(
            np.array([45.0, 45.0]), np.array([65.0, 65.0])
        )
        assert count == pytest.approx(8.0)
