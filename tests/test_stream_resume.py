"""Kill-and-resume tests for checkpointed queries.

The acceptance bar: a run killed mid-flight and resumed from its journal
produces a final model **bit-identical** to an uninterrupted run — same
centroids, same weights, same MSE, down to the last float bit.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.data.generator import generate_cell_points
from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import write_bucket_dir
from repro.stream.checkpoint import (
    JOURNAL_FILENAME,
    CheckpointError,
    ManifestMismatchError,
    read_journal,
)
from repro.stream.errors import ExecutionError
from repro.stream.faults import FaultPlan, FaultSpec
from repro.stream.query import Query, QueryError


@pytest.fixture
def bucket_dir(tmp_path):
    cells = [
        GridCell(GridCellId(10, 20), generate_cell_points(400, seed=1)),
        GridCell(GridCellId(11, 20), generate_cell_points(300, seed=2)),
        GridCell(GridCellId(12, 20), generate_cell_points(350, seed=3)),
    ]
    write_bucket_dir(tmp_path / "buckets", cells)
    return tmp_path / "buckets"


def checkpointed_query(buckets, run_dir, seed=7):
    return (
        Query.scan_buckets(str(buckets))
        .partition(4)
        .cluster(k=5, restarts=2)
        .merge()
        .with_seed(seed)
        .checkpoint(run_dir, resume=True, fsync=False)
    )


def plain_query(buckets, seed=7):
    return (
        Query.scan_buckets(str(buckets))
        .partition(4)
        .cluster(k=5, restarts=2)
        .merge()
        .with_seed(seed)
    )


def assert_models_bit_identical(expected, actual):
    assert set(expected) == set(actual)
    for key in expected:
        np.testing.assert_array_equal(
            expected[key].centroids, actual[key].centroids
        )
        np.testing.assert_array_equal(
            expected[key].weights, actual[key].weights
        )
        assert expected[key].mse == actual[key].mse


class TestCrashAndResume:
    def test_resume_after_injected_crash_is_bit_identical(
        self, bucket_dir, tmp_path
    ):
        run_dir = tmp_path / "run"
        # Crash the merge sink after 5 messages: the chaos wrapper fires
        # before consume, so exactly 5 partitions are journaled.
        faults = FaultPlan(
            seed=3,
            specs=[FaultSpec(target="merge", kind="crash", at_index=5)],
        )
        with pytest.raises(ExecutionError):
            checkpointed_query(bucket_dir, run_dir).execute(fault_plan=faults)

        state = read_journal(run_dir / JOURNAL_FILENAME)
        journaled = sum(len(parts) for parts in state.partitions.values())
        assert journaled == 5
        assert not state.complete

        resumed = checkpointed_query(bucket_dir, run_dir).execute()
        checkpoint = resumed.execution.metrics.checkpoint
        assert checkpoint.resumed
        total = checkpoint.partitions_replayed + checkpoint.partitions_recomputed
        # 3 cells x 4 partitions, minus whatever cells were finalised and
        # replayed wholesale from their journaled models.
        assert checkpoint.partitions_recomputed < 12
        assert total <= 12

        baseline = plain_query(bucket_dir).execute()
        assert_models_bit_identical(baseline.models, resumed.models)

    def test_resume_after_torn_write_is_bit_identical(
        self, bucket_dir, tmp_path
    ):
        """A journal truncated mid-record (a torn write: the process died
        inside a CRC frame) must resume cleanly from the last whole
        record and still produce bit-identical models."""
        run_dir = tmp_path / "run"
        checkpointed_query(bucket_dir, run_dir).execute()
        journal = run_dir / JOURNAL_FILENAME
        whole = read_journal(journal)
        assert whole.complete and not whole.torn

        # Tear the tail: cut inside the final record's payload, leaving
        # its CRC frame half-written.
        size = journal.stat().st_size
        with journal.open("r+b") as handle:
            handle.truncate(size - 3)

        torn = read_journal(journal)
        assert torn.torn
        assert not torn.complete
        assert torn.valid_bytes < size - 3
        # Every record before the tear decoded; only the torn one is gone.
        assert torn.records == whole.records - 1

        resumed = checkpointed_query(bucket_dir, run_dir).execute()
        assert resumed.execution.metrics.checkpoint.resumed
        baseline = plain_query(bucket_dir).execute()
        assert_models_bit_identical(baseline.models, resumed.models)
        # The rewritten journal is whole again.
        healed = read_journal(journal)
        assert healed.complete and not healed.torn

    def test_resume_of_complete_run_touches_no_buckets(
        self, bucket_dir, tmp_path
    ):
        run_dir = tmp_path / "run"
        first = checkpointed_query(bucket_dir, run_dir).execute()
        # A complete journal short-circuits: headers are still read for
        # manifest validation, but no payload is rescanned and nothing is
        # recomputed.
        state = read_journal(run_dir / JOURNAL_FILENAME)
        assert state.complete

        second = checkpointed_query(bucket_dir, run_dir).execute()
        checkpoint = second.execution.metrics.checkpoint
        assert checkpoint.resumed
        assert checkpoint.partitions_recomputed == 0
        assert_models_bit_identical(first.models, second.models)

    def test_existing_journal_without_resume_refused(
        self, bucket_dir, tmp_path
    ):
        run_dir = tmp_path / "run"
        checkpointed_query(bucket_dir, run_dir).execute()
        query = (
            Query.scan_buckets(str(bucket_dir))
            .partition(4)
            .cluster(k=5, restarts=2)
            .merge()
            .with_seed(7)
            .checkpoint(run_dir, resume=False)
        )
        with pytest.raises(CheckpointError, match="already exists"):
            query.execute()

    def test_resume_with_changed_config_refused(self, bucket_dir, tmp_path):
        run_dir = tmp_path / "run"
        faults = FaultPlan(
            seed=3,
            specs=[FaultSpec(target="merge", kind="crash", at_index=2)],
        )
        with pytest.raises(ExecutionError):
            checkpointed_query(bucket_dir, run_dir).execute(fault_plan=faults)
        changed = (
            Query.scan_buckets(str(bucket_dir))
            .partition(4)
            .cluster(k=9, restarts=2)  # k differs from the journal
            .merge()
            .with_seed(7)
            .checkpoint(run_dir, resume=True)
        )
        with pytest.raises(ManifestMismatchError, match="k:"):
            changed.execute()

    def test_resume_with_changed_inputs_refused(self, bucket_dir, tmp_path):
        run_dir = tmp_path / "run"
        faults = FaultPlan(
            seed=3,
            specs=[FaultSpec(target="merge", kind="crash", at_index=2)],
        )
        with pytest.raises(ExecutionError):
            checkpointed_query(bucket_dir, run_dir).execute(fault_plan=faults)
        extra = GridCell(GridCellId(50, 50), generate_cell_points(100, seed=9))
        write_bucket_dir(bucket_dir, [extra])
        with pytest.raises(ManifestMismatchError, match="inventory"):
            checkpointed_query(bucket_dir, run_dir).execute()

    def test_seedless_checkpoint_adopts_journaled_seed(
        self, bucket_dir, tmp_path
    ):
        run_dir = tmp_path / "run"
        faults = FaultPlan(
            seed=3,
            specs=[FaultSpec(target="merge", kind="crash", at_index=4)],
        )
        query = (
            Query.scan_buckets(str(bucket_dir))
            .partition(4)
            .cluster(k=5, restarts=2)
            .merge()
            .checkpoint(run_dir, resume=True, fsync=False)
        )
        with pytest.raises(ExecutionError):
            query.execute(fault_plan=faults)
        state = read_journal(run_dir / JOURNAL_FILENAME)
        recorded_seed = state.manifest["seed"]
        assert recorded_seed is not None

        resumed = (
            Query.scan_buckets(str(bucket_dir))
            .partition(4)
            .cluster(k=5, restarts=2)
            .merge()
            .checkpoint(run_dir, resume=True, fsync=False)
            .execute()
        )
        baseline = plain_query(bucket_dir, seed=recorded_seed).execute()
        assert_models_bit_identical(baseline.models, resumed.models)

    def test_checkpoint_requires_bucket_source(self, tmp_path):
        query = (
            Query.scan_cells({"c": generate_cell_points(100, seed=0)})
            .partition(2)
            .cluster(k=3, restarts=1)
            .checkpoint(tmp_path / "run")
        )
        with pytest.raises(QueryError, match="scan_buckets"):
            query.execute()


_CHILD_SCRIPT = """
import sys
from repro.stream.faults import FaultPlan, FaultSpec
from repro.stream.query import Query

buckets, run_dir = sys.argv[1], sys.argv[2]
# Slow the merge sink so the parent can SIGKILL us mid-run with records
# already journaled.
faults = FaultPlan(
    seed=1,
    specs=[FaultSpec(target="merge", kind="delay", probability=1.0,
                     delay_seconds=0.35)],
)
(
    Query.scan_buckets(buckets)
    .partition(4)
    .cluster(k=5, restarts=2)
    .merge()
    .with_seed(7)
    .checkpoint(run_dir, resume=True)
    .execute(fault_plan=faults)
)
"""


class TestSubprocessKill:
    def test_sigkilled_run_resumes_bit_identical(self, bucket_dir, tmp_path):
        run_dir = tmp_path / "run"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD_SCRIPT, str(bucket_dir), str(run_dir)],
            env=env,
        )
        journal = run_dir / JOURNAL_FILENAME
        try:
            # Wait until the child has durably journaled some partitions,
            # then kill it without warning.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    pytest.fail(
                        "child exited before it could be killed "
                        f"(rc={child.returncode})"
                    )
                if journal.exists():
                    state = read_journal(journal)
                    journaled = sum(
                        len(parts) for parts in state.partitions.values()
                    )
                    if journaled >= 2:
                        break
                time.sleep(0.05)
            else:
                pytest.fail("journal never accumulated partition records")
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        state = read_journal(journal)
        assert not state.complete
        journaled = sum(len(parts) for parts in state.partitions.values())
        assert journaled >= 2

        resumed = checkpointed_query(bucket_dir, run_dir).execute()
        checkpoint = resumed.execution.metrics.checkpoint
        assert checkpoint.resumed
        assert checkpoint.partitions_recomputed < 12

        baseline = plain_query(bucket_dir).execute()
        assert_models_bit_identical(baseline.models, resumed.models)
