"""Unit tests for repro.core.seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.seeding import (
    distinct_random_seeds,
    kmeans_parallel_seeds,
    kmeans_plus_plus_seeds,
    largest_weight_seeds,
    random_seeds,
    resolve_strategy,
)


def _rows_in(points: np.ndarray, candidates: np.ndarray) -> bool:
    """Every row of ``candidates`` appears in ``points``."""
    return all(any(np.allclose(row, p) for p in points) for row in candidates)


class TestRandomSeeds:
    def test_seeds_are_data_points(self, rng, blobs_2d):
        seeds = random_seeds(blobs_2d, 5, rng)
        assert seeds.shape == (5, 2)
        assert _rows_in(blobs_2d, seeds)

    def test_no_replacement(self, rng):
        points = np.arange(10, dtype=float).reshape(-1, 1)
        seeds = random_seeds(points, 10, rng)
        assert len(np.unique(seeds)) == 10

    def test_k_clamped_to_n(self, rng):
        points = np.ones((3, 2))
        seeds = random_seeds(points, 10, rng)
        assert seeds.shape == (3, 2)

    def test_rejects_k_zero(self, rng):
        with pytest.raises(ValueError, match="k must be >= 1"):
            random_seeds(np.ones((3, 2)), 0, rng)

    def test_deterministic_given_seed(self, blobs_2d):
        a = random_seeds(blobs_2d, 4, np.random.default_rng(5))
        b = random_seeds(blobs_2d, 4, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_returns_copy(self, rng):
        points = np.arange(8, dtype=float).reshape(-1, 2)
        seeds = random_seeds(points, 2, rng)
        seeds[:] = -1
        assert (points >= 0).all()


class TestDistinctRandomSeeds:
    def test_duplicated_data_yields_distinct_seeds(self, rng):
        points = np.repeat(np.arange(5, dtype=float).reshape(-1, 1), 20, axis=0)
        seeds = distinct_random_seeds(points, 5, rng)
        assert len(np.unique(seeds)) == 5

    def test_falls_back_when_too_few_distinct(self, rng):
        points = np.vstack([np.zeros((10, 2)), np.ones((10, 2))])
        seeds = distinct_random_seeds(points, 5, rng)
        assert seeds.shape[0] == 5  # fallback samples with coincidences

    def test_normal_data_behaves_like_random(self, rng, blobs_2d):
        seeds = distinct_random_seeds(blobs_2d, 6, rng)
        assert seeds.shape == (6, 2)
        assert _rows_in(blobs_2d, seeds)


class TestLargestWeightSeeds:
    def test_picks_heaviest(self):
        points = np.arange(5, dtype=float).reshape(-1, 1)
        weights = np.array([1.0, 9.0, 3.0, 7.0, 5.0])
        seeds = largest_weight_seeds(points, 2, weights)
        np.testing.assert_allclose(sorted(seeds.ravel()), [1.0, 3.0])

    def test_tie_broken_by_input_order(self):
        points = np.arange(4, dtype=float).reshape(-1, 1)
        weights = np.array([2.0, 2.0, 2.0, 2.0])
        seeds = largest_weight_seeds(points, 2, weights)
        np.testing.assert_allclose(seeds.ravel(), [0.0, 1.0])

    def test_k_clamped(self):
        points = np.ones((2, 3))
        seeds = largest_weight_seeds(points, 5, np.array([1.0, 2.0]))
        assert seeds.shape == (2, 3)

    def test_deterministic(self):
        points = np.random.default_rng(0).normal(size=(30, 4))
        weights = np.random.default_rng(1).uniform(size=30)
        a = largest_weight_seeds(points, 7, weights)
        b = largest_weight_seeds(points, 7, weights)
        np.testing.assert_array_equal(a, b)


class TestKMeansPlusPlus:
    def test_shape_and_membership(self, rng, blobs_2d):
        seeds = kmeans_plus_plus_seeds(blobs_2d, 4, rng)
        assert seeds.shape == (4, 2)
        assert _rows_in(blobs_2d, seeds)

    def test_spreads_across_blobs(self, blobs_2d, blob_centers_2d):
        # With well-separated blobs, k-means++ should hit all four corners
        # almost always; check over a few trials.
        hits = 0
        for trial in range(5):
            seeds = kmeans_plus_plus_seeds(
                blobs_2d, 4, np.random.default_rng(trial)
            )
            assigned = {
                int(np.argmin(((blob_centers_2d - s) ** 2).sum(axis=1)))
                for s in seeds
            }
            hits += len(assigned) == 4
        assert hits >= 4

    def test_handles_all_identical_points(self, rng):
        points = np.ones((10, 2))
        seeds = kmeans_plus_plus_seeds(points, 3, rng)
        assert seeds.shape == (3, 2)

    def test_weight_aware(self, rng):
        points = np.array([[0.0], [100.0]])
        seeds = kmeans_plus_plus_seeds(
            points, 1, rng, weights=np.array([1e9, 1e-9])
        )
        assert seeds[0, 0] == 0.0


class TestKMeansParallelSeeds:
    def test_shape_and_membership(self, rng, blobs_2d):
        seeds = kmeans_parallel_seeds(blobs_2d, 4, rng)
        assert seeds.shape == (4, 2)
        assert _rows_in(blobs_2d, seeds)

    def test_spreads_across_blobs(self, blobs_2d, blob_centers_2d):
        hits = 0
        for trial in range(5):
            seeds = kmeans_parallel_seeds(
                blobs_2d, 4, np.random.default_rng(trial)
            )
            assigned = {
                int(np.argmin(((blob_centers_2d - s) ** 2).sum(axis=1)))
                for s in seeds
            }
            hits += len(assigned) == 4
        # The oversampled candidate pool covers every blob essentially
        # always; the reduction keeps one seed per blob.
        assert hits >= 4

    def test_deterministic_given_seed(self, blobs_2d):
        a = kmeans_parallel_seeds(blobs_2d, 6, np.random.default_rng(5))
        b = kmeans_parallel_seeds(blobs_2d, 6, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_k_clamped_to_n(self, rng):
        points = np.arange(6, dtype=float).reshape(-1, 1)
        seeds = kmeans_parallel_seeds(points, 50, rng)
        assert seeds.shape == (6, 1)

    def test_handles_all_identical_points(self, rng):
        points = np.ones((10, 2))
        seeds = kmeans_parallel_seeds(points, 3, rng)
        assert seeds.shape == (3, 2)

    def test_weight_aware(self, rng):
        points = np.array([[0.0], [100.0], [100.1]])
        seeds = kmeans_parallel_seeds(
            points, 1, rng, weights=np.array([1e9, 1e-9, 1e-9])
        )
        assert seeds[0, 0] == 0.0

    def test_rejects_bad_rounds_and_oversampling(self, rng, blobs_2d):
        with pytest.raises(ValueError, match="rounds"):
            kmeans_parallel_seeds(blobs_2d, 4, rng, rounds=0)
        with pytest.raises(ValueError, match="oversampling"):
            kmeans_parallel_seeds(blobs_2d, 4, rng, oversampling=0.0)

    def test_quality_beats_random_on_average(self, blobs_2d):
        """One k-means|| seed set should rival multi-restart random seeds
        (the property the restart-free shard path relies on)."""
        from repro.core.kmeans import lloyd

        def final_mse(seeds):
            return lloyd(blobs_2d, seeds).mse

        parallel = np.mean(
            [
                final_mse(
                    kmeans_parallel_seeds(
                        blobs_2d, 4, np.random.default_rng(t)
                    )
                )
                for t in range(5)
            ]
        )
        random = np.mean(
            [
                final_mse(random_seeds(blobs_2d, 4, np.random.default_rng(t)))
                for t in range(5)
            ]
        )
        assert parallel <= random * 1.05


class TestResolveStrategy:
    @pytest.mark.parametrize(
        "name", ["random", "distinct", "kmeans++", "kmeans||"]
    )
    def test_known_strategies(self, name):
        assert callable(resolve_strategy(name))

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown seeding strategy"):
            resolve_strategy("weights")
