"""Kill-and-resume test for the coreset tree.

The bar (ISSUE 6): a prefix-query run SIGKILLed mid-stream and resumed
from its journal rebuilds every cell's coreset tree from the journaled
``partition`` and ``tree_node`` records and answers prefix queries
**bit-identically** to an uninterrupted run — while adopting journaled
node merges instead of recomputing them.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.data.generator import generate_cell_points
from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import write_bucket_dir
from repro.stream.checkpoint import JOURNAL_FILENAME, read_journal
from repro.stream.query import Query


@pytest.fixture
def bucket_dir(tmp_path):
    cells = [
        GridCell(GridCellId(10, 20), generate_cell_points(400, seed=1)),
        GridCell(GridCellId(11, 20), generate_cell_points(300, seed=2)),
        GridCell(GridCellId(12, 20), generate_cell_points(350, seed=3)),
    ]
    write_bucket_dir(tmp_path / "buckets", cells)
    return tmp_path / "buckets"


def prefix_query(buckets, run_dir=None):
    query = (
        Query.scan_buckets(str(buckets))
        .partition(4)
        .cluster(k=5, restarts=2)
        .merge()
        .with_seed(7)
        .with_prefix_queries(every=2)
    )
    if run_dir is not None:
        query = query.checkpoint(run_dir, resume=True, fsync=False)
    return query


def assert_query_answers_bit_identical(expected, actual):
    assert (expected.start, expected.upto) == (actual.start, actual.upto)
    np.testing.assert_array_equal(
        expected.model.centroids, actual.model.centroids
    )
    np.testing.assert_array_equal(
        expected.model.weights, actual.model.weights
    )


_CHILD_SCRIPT = """
import sys
from repro.stream.faults import FaultPlan, FaultSpec
from repro.stream.query import Query

buckets, run_dir = sys.argv[1], sys.argv[2]
# Slow the merge sink so the parent can SIGKILL us mid-run with records
# already journaled.
faults = FaultPlan(
    seed=1,
    specs=[FaultSpec(target="merge", kind="delay", probability=1.0,
                     delay_seconds=0.35)],
)
(
    Query.scan_buckets(buckets)
    .partition(4)
    .cluster(k=5, restarts=2)
    .merge()
    .with_seed(7)
    .with_prefix_queries(every=2)
    .checkpoint(run_dir, resume=True)
    .execute(fault_plan=faults)
)
"""


class TestCompleteJournalReplay:
    def test_resume_of_finished_run_replays_queries(self, bucket_dir, tmp_path):
        """Resuming a *complete* journal streams nothing, yet still
        answers the scheduled and final prefix queries — rebuilt from
        journaled partitions with every tree merge adopted, bit-identical
        to the original run's answers."""
        run_dir = tmp_path / "run"
        first = prefix_query(bucket_dir, run_dir).execute()
        second = prefix_query(bucket_dir, run_dir).execute()

        assert second.execution.metrics.checkpoint.resumed
        assert set(second.final_queries) == set(first.final_queries) != set()
        for cell in first.final_queries:
            assert_query_answers_bit_identical(
                first.final_queries[cell], second.final_queries[cell]
            )
        grouped_first: dict = {}
        for answer in first.prefix_queries:
            grouped_first.setdefault(answer.cell_id, []).append(answer)
        grouped_second: dict = {}
        for answer in second.prefix_queries:
            grouped_second.setdefault(answer.cell_id, []).append(answer)
        assert set(grouped_first) == set(grouped_second)
        for cell in grouped_first:
            assert len(grouped_first[cell]) == len(grouped_second[cell])
            for expected, actual in zip(
                grouped_first[cell], grouped_second[cell]
            ):
                assert_query_answers_bit_identical(expected, actual)
        # Every internal merge came from the journal; none were redone.
        stats = second.execution.metrics.tree_stats
        assert stats["nodes_preloaded"] > 0
        assert stats["node_merges"] == 0


class TestTreeSurvivesSigkill:
    def test_rebuilt_tree_answers_bit_identical(self, bucket_dir, tmp_path):
        run_dir = tmp_path / "run"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD_SCRIPT, str(bucket_dir), str(run_dir)],
            env=env,
        )
        journal = run_dir / JOURNAL_FILENAME
        try:
            # Wait until the child has durably journaled some partitions,
            # then kill it without warning.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    pytest.fail(
                        "child exited before it could be killed "
                        f"(rc={child.returncode})"
                    )
                if journal.exists():
                    state = read_journal(journal)
                    journaled = sum(
                        len(parts) for parts in state.partitions.values()
                    )
                    if journaled >= 3:
                        break
                time.sleep(0.05)
            else:
                pytest.fail("journal never accumulated partition records")
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        state = read_journal(journal)
        assert not state.complete

        resumed = prefix_query(bucket_dir, run_dir).execute()
        uninterrupted = prefix_query(bucket_dir).execute()

        # The rebuilt trees answer end-of-stream prefix queries with the
        # exact same bits, for every cell.
        assert set(resumed.final_queries) == set(uninterrupted.final_queries)
        for cell in uninterrupted.final_queries:
            assert_query_answers_bit_identical(
                uninterrupted.final_queries[cell],
                resumed.final_queries[cell],
            )

        # The per-cell scheduled-query sequences match bit-identically
        # too (global interleaving across cells may differ).
        def by_cell(result):
            grouped = {}
            for answer in result.prefix_queries:
                grouped.setdefault(answer.cell_id, []).append(answer)
            return grouped

        expected_log = by_cell(uninterrupted)
        actual_log = by_cell(resumed)
        assert set(expected_log) == set(actual_log)
        for cell in expected_log:
            assert len(expected_log[cell]) == len(actual_log[cell])
            for expected, actual in zip(expected_log[cell], actual_log[cell]):
                assert_query_answers_bit_identical(expected, actual)

        # Final models stay bit-identical, and the resume actually
        # adopted journaled tree merges (if any internal merge had been
        # journaled before the kill) rather than starting from scratch.
        for cell in uninterrupted.models:
            np.testing.assert_array_equal(
                uninterrupted.models[cell].centroids,
                resumed.models[cell].centroids,
            )
            assert uninterrupted.models[cell].mse == resumed.models[cell].mse
        journaled_nodes = sum(
            len(nodes) for nodes in state.tree_nodes.values()
        )
        stats = resumed.execution.metrics.tree_stats
        assert stats["nodes_preloaded"] >= min(journaled_nodes, 1)
